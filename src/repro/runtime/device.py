"""Cost-charged local linear-algebra kernels.

:class:`LocalKernels` is the only place where rank-local math happens.
Every method

* executes the real NumPy/SciPy operation when given real arrays, or
  propagates :class:`~repro.arrays.PhantomArray` metadata when given
  phantoms (performance-only mode), and
* charges the modeled kernel time (``repro.perfmodel.kernels``) to the
  owning rank's clock and tracer under :data:`CostCategory.COMPUTE`.

The mapping to the paper's GPU port (Sec. 3.3): GEMM/HEMM -> cuBLAS,
SYRK/TRSM -> cuBLAS, POTRF/GEQRF/HEEVD -> cuSOLVER, batched BLAS-1
residual kernels -> custom CUDA kernel (NCCL build) or host BLAS (STD).

Every kernel accepts ``compute=False`` to charge the modeled time
without touching the numerics (returning ``None``).  Replication-aware
execution uses it for replica ranks whose result is aliased from the
group's root (see ``repro.distributed.replication``): the cost model
sees the identical per-rank charge sequence while the arithmetic runs
once per unique block.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.linalg

from repro.arrays import PhantomArray, is_phantom
from repro.perfmodel.kernels import (
    KernelTimeModel,
    gemm_flops,
    geqrf_flops,
    heevd_flops,
    potrf_flops,
    syrk_flops,
    trsm_flops,
)

__all__ = [
    "LocalKernels",
    "gemm_numeric",
    "syrk_numeric",
    "trsm_numeric",
    "axpby_numeric",
    "axpy_into_numeric",
]


def _any_phantom(*xs) -> bool:
    return any(is_phantom(x) for x in xs)


# -- pure numeric kernels ----------------------------------------------------------
# The arithmetic of the charged kernels, factored out so the decoupled
# charge/compute paths (``repro.distributed.hemm``, ``repro.core.qr``)
# can hand the *exact same* operations to ``repro.runtime.executor`` as
# closures.  No charging, no phantom handling — ndarrays only.  The
# optional ``out`` writes into preallocated storage; ``np.matmul`` with
# ``out=`` produces the same bits as ``@`` (same BLAS call, caller
# supplies the result buffer).

def gemm_numeric(A, B, *, op_a: str = "N", alpha: float = 1.0, out=None):
    """``alpha * op(A) @ B`` — the numeric core of :meth:`LocalKernels.gemm`."""
    Aop = A if op_a == "N" else (A.T if op_a == "T" else A.conj().T)
    if out is None:
        out = Aop @ B
    else:
        np.matmul(Aop, B, out=out)
    if alpha != 1.0:
        out *= alpha
    return out


def syrk_numeric(X):
    """``X^H X`` symmetrized — the numeric core of :meth:`LocalKernels.syrk`."""
    G = X.conj().T @ X
    # enforce exact Hermitian symmetry (SYRK only writes one triangle)
    return 0.5 * (G + G.conj().T)


def trsm_numeric(X, R):
    """``X R^{-1}`` — the numeric core of :meth:`LocalKernels.trsm`."""
    # Y R = X  =>  R^T Y^T = X^T (plain transpose, also valid for complex)
    Yt = scipy.linalg.solve_triangular(R.T, X.T, lower=True)
    return np.ascontiguousarray(Yt.T)


def axpby_numeric(alpha, X, beta, Y, out=None):
    """``alpha*X + beta*Y`` — the numeric core of :meth:`LocalKernels.axpby`.

    With ``out`` the combination lands in preallocated storage (``out``
    may alias ``X`` but must not alias ``Y``); the intermediate
    roundings match the expression form, so the bits are unchanged.
    """
    if out is None:
        return alpha * X + beta * Y
    np.multiply(X, alpha, out=out)
    out += beta * Y
    return out


def axpy_into_numeric(W, wrows: slice, X, xrows: slice, alpha: float):
    """``W[wrows, :] += alpha * X[xrows, :]`` — core of :meth:`LocalKernels.axpy_into`."""
    W[wrows, :] += alpha * X[xrows, :]
    return W


class LocalKernels:
    """BLAS/LAPACK kernel set bound to one device and one charge sink.

    Parameters
    ----------
    model:
        Time model for the executing device.
    charge:
        Callable ``charge(seconds)`` that advances the owning rank's
        clock and books the time as COMPUTE.
    """

    def __init__(self, model: KernelTimeModel, charge: Callable[[float], None]):
        self.model = model
        self._charge = charge

    # -- level 3 ---------------------------------------------------------------
    def gemm(
        self,
        A,
        B,
        *,
        op_a: str = "N",
        alpha: float = 1.0,
        kind: str = "gemm",
        compute: bool = True,
        charge_dtype=None,
    ):
        """``alpha * op(A) @ B`` with ``op in {"N", "T", "C"}``.

        ``charge_dtype`` (a precision token or dtype) overrides the
        dtype the *time model* rates the kernel at — the emulated half
        tiers compute in fp32 storage but are charged at 2-byte-tier
        throughput.  The flop count always follows the operand dtype
        (complex factor), and ``None`` keeps the seed charge exactly.
        """
        if op_a not in ("N", "T", "C"):
            raise ValueError(f"bad op_a {op_a!r}")
        am, ak = (A.shape if op_a == "N" else A.shape[::-1])
        bk, bn = B.shape
        if ak != bk:
            raise ValueError(f"gemm shape mismatch: op(A)={am}x{ak}, B={bk}x{bn}")
        dtype = np.result_type(A.dtype, B.dtype)
        self._charge(self.model.time(
            kind, gemm_flops(am, bn, ak, dtype),
            dtype=dtype if charge_dtype is None else charge_dtype,
        ))
        if not compute:
            return None
        if _any_phantom(A, B):
            return PhantomArray((am, bn), dtype)
        return gemm_numeric(A, B, op_a=op_a, alpha=alpha)

    def hemm(self, H, X, *, op_h: str = "N", alpha: float = 1.0,
             compute: bool = True, charge_dtype=None):
        """Hermitian matrix times a block of vectors (cuBLAS ZHEMM/DSYMM)."""
        return self.gemm(H, X, op_a=op_h, alpha=alpha, kind="hemm",
                         compute=compute, charge_dtype=charge_dtype)

    def syrk(self, X, *, compute: bool = True, charge_dtype=None):
        """Gram matrix ``X^H X`` (ZHERK/DSYRK)."""
        m, n = X.shape
        self._charge(self.model.time(
            "syrk", syrk_flops(n, m, X.dtype),
            dtype=X.dtype if charge_dtype is None else charge_dtype,
        ))
        if not compute:
            return None
        if is_phantom(X):
            return PhantomArray((n, n), X.dtype)
        return syrk_numeric(X)

    def trsm(self, X, R, *, compute: bool = True, charge_dtype=None):
        """``X <- X R^{-1}`` with ``R`` upper triangular (right-side TRSM)."""
        m, n = X.shape
        if R is not None and R.shape != (n, n):
            raise ValueError(f"trsm shape mismatch: X={X.shape}, R={R.shape}")
        self._charge(self.model.time(
            "trsm", trsm_flops(m, n, X.dtype),
            dtype=X.dtype if charge_dtype is None else charge_dtype,
        ))
        if not compute:
            return None
        if _any_phantom(X, R):
            return PhantomArray((m, n), np.result_type(X.dtype, R.dtype))
        return trsm_numeric(X, R)

    # -- factorizations ---------------------------------------------------------
    def potrf(self, G, *, compute: bool = True, charge_dtype=None):
        """Cholesky ``G = R^H R`` (upper factor).  Returns ``(R, info)``;
        ``info != 0`` signals breakdown (matrix not positive definite),
        mirroring LAPACK xPOTRF semantics."""
        n = G.shape[0]
        self._charge(self.model.time(
            "potrf", potrf_flops(n, G.dtype),
            dtype=G.dtype if charge_dtype is None else charge_dtype,
        ))
        if not compute:
            return None, 0
        if is_phantom(G):
            return PhantomArray((n, n), G.dtype), 0
        try:
            L = np.linalg.cholesky(G)
        except np.linalg.LinAlgError:
            return G, 1
        return L.conj().T, 0

    def qr(self, X, *, compute: bool = True):
        """Economy Householder QR; returns the explicit Q factor
        (GEQRF + ORGQR/UNGQR, both charged).

        Complex GEQRF runs at ~1.8x the real-flop rate of DGEQRF (four
        real flops per memory element quadruple the panel's arithmetic
        intensity), modeled by deflating the charged flop count.
        """
        m, n = X.shape
        f = geqrf_flops(m, n, X.dtype)
        if np.dtype(X.dtype).kind == "c":
            f /= 1.8
        self._charge(self.model.time("geqrf", 2.0 * f, dtype=X.dtype))  # factor + form Q
        if not compute:
            return None
        if is_phantom(X):
            return PhantomArray((m, n), X.dtype)
        Q, _ = np.linalg.qr(X)
        return Q

    def eigh(self, A, *, compute: bool = True):
        """Full Hermitian eigendecomposition (cuSOLVER ZHEEVD/DSYEVD)."""
        n = A.shape[0]
        self._charge(self.model.time("heevd", heevd_flops(n, A.dtype), dtype=A.dtype))
        if not compute:
            return None, None
        if is_phantom(A):
            return PhantomArray((n,), np.float64), PhantomArray((n, n), A.dtype)
        w, V = np.linalg.eigh(A)
        return w, V

    # -- level 1 / batched vector ops --------------------------------------------
    def _blas1_charge(self, nbytes: float, n_ops: int = 1) -> None:
        self._charge(
            self.model.time("blas1", 0.0, bytes_touched=nbytes)
            + (n_ops - 1) * self.model.device.launch_overhead
        )

    def cast(self, X, dtype, *, compute: bool = True, elem_bytes=None):
        """Precision conversion ``X.astype(dtype)`` (bandwidth-bound copy).

        Charged as a streaming kernel reading the source and writing the
        destination width; used by the mixed-precision filter for
        demote/promote copies and by the HEMM for its cached narrow
        H-block casts.  ``elem_bytes`` — an optional ``(src, dst)``
        pair of per-element byte widths — overrides the itemsize-based
        charge for the emulated half tiers, whose fp32 storage is twice
        as wide as the 2-byte words the modeled hardware would stream.
        """
        dtype = np.dtype(dtype)
        if elem_bytes is not None:
            src_b, dst_b = elem_bytes
        else:
            src_b, dst_b = X.itemsize, dtype.itemsize
        nbytes = X.size * (src_b + dst_b)
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if is_phantom(X):
            return PhantomArray(tuple(X.shape), dtype)
        return X.astype(dtype)

    def axpby(self, alpha, X, beta, Y, *, compute: bool = True):
        """``alpha*X + beta*Y`` elementwise (same shapes)."""
        if tuple(X.shape) != tuple(Y.shape):
            raise ValueError("axpby shape mismatch")
        dtype = np.result_type(X.dtype, Y.dtype)
        nbytes = 3 * X.size * np.dtype(dtype).itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if _any_phantom(X, Y):
            return PhantomArray(tuple(X.shape), dtype)
        return axpby_numeric(alpha, X, beta, Y)

    def axpy_into(self, W, wrows: slice, X, xrows: slice, alpha: float, *, compute: bool = True):
        """``W[wrows, :] += alpha * X[xrows, :]`` (row-sliced AXPY).

        Used for the diagonal-shift term of ``(H - gamma I) X`` on the
        segment overlap between a rank's row and column index ranges.
        """
        nrows = wrows.stop - wrows.start
        ncols = W.shape[1]
        nbytes = 3 * nrows * ncols * np.dtype(W.dtype).itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return W
        if _any_phantom(W, X):
            return W
        return axpy_into_numeric(W, wrows, X, xrows, alpha)

    def scale(self, X, alpha: float, *, compute: bool = True):
        """``X *= alpha`` in place (real); phantom pass-through.

        ``compute=False`` charges without mutating — the caller must use
        it for every replica slot sharing an already-scaled ndarray
        (aliased multivectors), else the shared block is scaled twice.
        """
        nbytes = 2 * X.size * X.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return X
        if is_phantom(X):
            return X
        X *= alpha
        return X

    def scale_columns(self, X, v, *, compute: bool = True):
        """``X * v[None, :]`` — per-column scaling."""
        nbytes = 2 * X.size * X.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if _any_phantom(X, v):
            return PhantomArray(tuple(X.shape), X.dtype)
        return X * np.asarray(v)[None, :]

    def sub_scaled_columns(self, B, B2, ritzv, *, compute: bool = True):
        """``B - B2 * ritzv[None, :]`` — the residual numerator
        (Algorithm 2, line 22), batched as one device kernel."""
        if tuple(B.shape) != tuple(B2.shape):
            raise ValueError("shape mismatch")
        nbytes = 3 * B.size * B.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if _any_phantom(B, B2, ritzv):
            return PhantomArray(tuple(B.shape), B.dtype)
        return B - B2 * np.asarray(ritzv)[None, :]

    def colnorms_sq(self, X, *, compute: bool = True):
        """Squared Euclidean norm of each column (batched DOT kernels)."""
        nbytes = X.size * X.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if is_phantom(X):
            return PhantomArray((X.shape[1],), np.float64)
        return np.einsum("ij,ij->j", X.conj(), X).real.copy()

    def dot_columns(self, X, Y, *, compute: bool = True):
        """Per-column inner products ``diag(X^H Y)`` (batched DOT)."""
        if tuple(X.shape) != tuple(Y.shape):
            raise ValueError("dot_columns shape mismatch")
        nbytes = 2 * X.size * X.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if _any_phantom(X, Y):
            return PhantomArray((X.shape[1],), np.result_type(X.dtype, Y.dtype))
        return np.einsum("ij,ij->j", X.conj(), Y).copy()

    def frob_norm_sq(self, X, *, compute: bool = True):
        """Squared Frobenius norm (single fused reduction)."""
        nbytes = X.size * X.itemsize
        self._blas1_charge(nbytes)
        if not compute:
            return None
        if is_phantom(X):
            return 1.0  # placeholder scalar; phantom mode never branches on it
        return float(np.vdot(X, X).real)

    def add_diag(self, G, s: float, *, compute: bool = True):
        """``G + s*I`` (shift before POTRF in s-CholeskyQR)."""
        n = G.shape[0]
        self._blas1_charge(2 * n * np.dtype(G.dtype).itemsize)
        if not compute:
            return None
        if is_phantom(G):
            return G
        out = G.copy()
        out[np.diag_indices(n)] += s
        return out
