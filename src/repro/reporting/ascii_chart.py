"""ASCII line charts — eyeball the regenerated figures in a terminal.

No plotting dependency ships with the reproduction, but the scaling
figures are about *shape*; this renderer draws multiple series over a
(log-log capable) character grid so a bench's output can be compared
against the paper's plots at a glance.
"""

from __future__ import annotations

import math

__all__ = ["render_chart"]

_MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError("log-scale requires positive values")
        return math.log10(v)
    return float(v)


def render_chart(
    title: str,
    xs: list,
    series: dict[str, list],
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
) -> str:
    """Render series as an ASCII chart (one marker character each).

    ``None`` entries (e.g. out-of-memory points) are skipped.
    """
    if width < 16 or height < 6:
        raise ValueError("chart too small")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    pts = []
    for ys in series.values():
        if len(ys) != len(xs):
            raise ValueError("series length must match xs")
        pts.extend((x, y) for x, y in zip(xs, ys) if y is not None)
    if not pts:
        return f"{title}\n(no data)"

    tx = [_transform(x, log_x) for x, _ in pts]
    ty = [_transform(y, log_y) for _, y in pts]
    x_lo, x_hi = min(tx), max(tx)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for x, y in zip(xs, ys):
            if y is None:
                continue
            cx = int((_transform(x, log_x) - x_lo) / x_span * (width - 1))
            cy = int((_transform(y, log_y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - cy][cx] = marker

    y_top = f"{10**y_hi if log_y else y_hi:.3g}"
    y_bot = f"{10**y_lo if log_y else y_lo:.3g}"
    label_w = max(len(y_top), len(y_bot))
    lines = [title]
    for r, row in enumerate(grid):
        label = y_top if r == 0 else (y_bot if r == height - 1 else "")
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    x_left = f"{xs[0]}"
    x_right = f"{xs[-1]}"
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_w + 2) + x_left + " " * max(pad, 1) + x_right
    )
    legend = "   ".join(
        f"{m}={name}" for m, name in zip(_MARKERS, series.keys())
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def render_stacked_bars(
    title: str,
    rows: list[tuple[str, dict[str, float]]],
    width: int = 60,
    glyphs: dict[str, str] | None = None,
) -> str:
    """Horizontal stacked bars (the paper's Fig. 2 presentation).

    ``rows`` is a list of ``(label, {segment: value})``; every bar is
    scaled to the global maximum total.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not rows:
        return f"{title}\n(no data)"
    seg_names: list[str] = []
    for _label, segs in rows:
        for k in segs:
            if k not in seg_names:
                seg_names.append(k)
    if glyphs is None:
        defaults = "#~.:+*"
        glyphs = {k: defaults[i % len(defaults)]
                  for i, k in enumerate(seg_names)}
    max_total = max(sum(segs.values()) for _l, segs in rows) or 1.0
    label_w = max(len(l) for l, _ in rows)
    lines = [title]
    for label, segs in rows:
        total = sum(segs.values())
        bar = ""
        for k in seg_names:
            v = segs.get(k, 0.0)
            n = int(round(v / max_total * width))
            bar += glyphs[k] * n
        lines.append(f"{label.rjust(label_w)} |{bar.ljust(width)}| {total:.3g}")
    legend = "   ".join(f"{glyphs[k]}={k}" for k in seg_names)
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
