"""Plain-text table rendering (paper-style rows)."""

from __future__ import annotations

__all__ = ["render_table"]


def _fmt(x) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e5 or abs(x) < 1e-3:
            return f"{x:.2e}"
        return f"{x:,.2f}"
    if isinstance(x, int):
        return f"{x:,}"
    return str(x)


def render_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
