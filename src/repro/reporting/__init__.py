"""Table, series, and chart renderers for the benchmark harness."""

from repro.reporting.tables import render_table
from repro.reporting.series import render_series
from repro.reporting.ascii_chart import render_chart, render_stacked_bars

__all__ = ["render_table", "render_series", "render_chart", "render_stacked_bars"]
