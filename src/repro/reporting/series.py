"""Figure-series rendering: one labeled (x, y...) line per data point.

Benchmarks print each figure's data as plain series so the regenerated
curves can be compared against the paper's plots (and re-plotted with
any tool) without a plotting dependency.
"""

from __future__ import annotations

__all__ = ["render_series"]


def render_series(
    name: str,
    x_label: str,
    xs: list,
    columns: dict[str, list],
    y_format: str = "{:.4g}",
) -> str:
    """Render one figure's series.

    ``columns`` maps series name -> y values (aligned with ``xs``);
    ``None`` entries render as ``--`` (e.g. LMS's out-of-memory points).
    """
    lines = [f"# {name}"]
    header = [x_label.rjust(12)] + [k.rjust(14) for k in columns]
    lines.append(" ".join(header))
    for i, x in enumerate(xs):
        row = [str(x).rjust(12)]
        for ys in columns.values():
            y = ys[i]
            row.append(("--" if y is None else y_format.format(y)).rjust(14))
        lines.append(" ".join(row))
    return "\n".join(lines)
