"""Shard scheduler: packing admitted jobs onto cluster partitions.

The virtual cluster's rank budget is partitioned into disjoint
:class:`Shard`\\ s (contiguous rank ranges — the NUMA-friendly layout a
real deployment would use).  The :class:`Scheduler` runs a
discrete-event loop over modeled service time:

* **admission** — ``submit()`` enforces the bounded queue
  (:class:`QueueFullError`) and per-tenant in-flight quotas
  (:class:`QuotaExceededError`); an admitted job is *guaranteed* a
  terminal state — no silent drops (property-tested in
  ``tests/test_service.py``);
* **packing** — whenever a shard frees, the globally highest-priority
  runnable job starts (FIFO within equal priority, by submission
  index).  A job can therefore only be passed over by strictly
  higher-priority work or by jobs that were already running — bounded
  priority inversion;
* **sequences** — step ``k`` of a sequence becomes runnable only when
  step ``k-1`` is terminal (the warm-start cache carries the subspace
  between them);
* **deadlines** — a job whose turn arrives after its deadline is
  CANCELLED (typed, recorded), freeing its slot immediately.

Execution is delegated to a ``runner`` callable — the property suite
substitutes a deterministic stub; :class:`~repro.service.EigenService`
wires the real :class:`~repro.core.ChaseSolver` path.  The runner
returns a :class:`RunOutcome` whose ``duration`` is the job's modeled
makespan; the scheduler advances the shard's clock by exactly that, so
queue waits and throughput are honest model time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.service.jobs import (
    JobRecord,
    JobState,
    QueueFullError,
    QuotaExceededError,
    SolveJob,
)

__all__ = ["Shard", "partition_ranks", "RunOutcome", "Scheduler"]


@dataclass(frozen=True)
class Shard:
    """A disjoint slice of the virtual cluster's rank budget."""

    index: int
    ranks: tuple[int, ...]

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Shard({self.index}: ranks {self.ranks[0]}..{self.ranks[-1]})"


def partition_ranks(total_ranks: int, n_shards: int) -> tuple[Shard, ...]:
    """Partition ``total_ranks`` into ``n_shards`` contiguous, disjoint,
    near-equal shards (larger shards first); every rank belongs to
    exactly one shard, so concurrent jobs can never share a rank."""
    if total_ranks < 1:
        raise ValueError("need at least one rank")
    if not 1 <= n_shards <= total_ranks:
        raise ValueError(
            f"n_shards must be in [1, {total_ranks}], got {n_shards}"
        )
    base, extra = divmod(total_ranks, n_shards)
    shards = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(Shard(i, tuple(range(start, start + size))))
        start += size
    return tuple(shards)


@dataclass
class RunOutcome:
    """What a runner reports back for one job.

    ``duration`` is the job's modeled wall time on its shard (the shard
    clock advances by it even for failed jobs — a crashed solve occupied
    the shard until it crashed).  ``error`` marks the job FAILED.
    ``payload`` is stashed on the record for result assembly.
    """

    duration: float
    payload: dict[str, Any] = field(default_factory=dict)
    error: str | None = None


class Scheduler:
    """Discrete-event packing of admitted jobs onto shards.

    Parameters
    ----------
    shards:
        The cluster partition (see :func:`partition_ranks`).
    runner:
        ``runner(job, shard, start_time) -> RunOutcome``.  Exceptions
        are caught and recorded as FAILED (typed in ``record.error``) —
        one job's crash never takes down the service loop.
    quota:
        Per-tenant cap on non-terminal (in-flight) jobs; ``None`` means
        unlimited.
    max_queue:
        Bound on total non-terminal jobs (backpressure).
    """

    def __init__(
        self,
        shards: tuple[Shard, ...],
        *,
        runner: Callable[[SolveJob, Shard, float], RunOutcome],
        quota: int | None = None,
        max_queue: int = 64,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        seen: set[int] = set()
        for s in shards:
            overlap = seen.intersection(s.ranks)
            if overlap:
                raise ValueError(f"shards overlap on ranks {sorted(overlap)}")
            seen.update(s.ranks)
        if quota is not None and quota < 1:
            raise ValueError("quota must be >= 1 (or None)")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.shards = tuple(shards)
        self.runner = runner
        self.quota = quota
        self.max_queue = max_queue
        self.records: list[JobRecord] = []
        self._by_id: dict[str, JobRecord] = {}

    # ---------------------------------------------------------- admission
    def _in_flight(self, tenant: str | None = None) -> int:
        return sum(
            1 for r in self.records
            if not r.state.terminal
            and (tenant is None or r.job.tenant == tenant)
        )

    def submit(self, job: SolveJob, submit_time: float = 0.0) -> JobRecord:
        """Admit ``job`` at ``submit_time`` (modeled service seconds).

        Raises :class:`QueueFullError` / :class:`QuotaExceededError` on
        backpressure; an admitted job always reaches a terminal state.
        """
        if job.job_id in self._by_id:
            raise ValueError(f"duplicate job_id {job.job_id!r}")
        if submit_time < 0:
            raise ValueError("submit_time must be >= 0")
        if self._in_flight() >= self.max_queue:
            raise QueueFullError(
                f"queue full ({self.max_queue} jobs in flight)"
            )
        if self.quota is not None and \
                self._in_flight(job.tenant) >= self.quota:
            raise QuotaExceededError(
                f"tenant {job.tenant!r} is at its quota of {self.quota} "
                f"in-flight jobs"
            )
        rec = JobRecord(
            job=job, submit_index=len(self.records),
            submit_time=float(submit_time),
        )
        self.records.append(rec)
        self._by_id[job.job_id] = rec
        return rec

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a not-yet-running job (no-op error if already running
        or terminal — the virtual timeline has no preemption)."""
        rec = self._by_id[job_id]
        rec.transition(JobState.CANCELLED)  # raises unless PENDING/SCHEDULED
        rec.error = "cancelled by caller"
        return rec

    # ---------------------------------------------------------- the loop
    def _dep_record(self, rec: JobRecord) -> JobRecord | None:
        """The record of the previous sequence step, if it was admitted."""
        job = rec.job
        if job.sequence_id is None or job.step == 0:
            return None
        best = None
        for other in self.records:
            if other is rec:
                continue
            if other.job.sequence_id == job.sequence_id \
                    and other.job.step == job.step - 1:
                best = other
        return best

    def _ready_time(self, rec: JobRecord) -> float:
        """Earliest modeled time ``rec`` could start (inf while its
        sequence predecessor has not finished)."""
        dep = self._dep_record(rec)
        if dep is None:
            return rec.submit_time
        if not dep.state.terminal:
            return float("inf")
        return max(rec.submit_time, dep.finish_time or dep.submit_time)

    def run(self) -> list[JobRecord]:
        """Drain the queue: run every admitted job to a terminal state.

        Deterministic given the same submissions and runner; returns the
        records in submission order.
        """
        shard_free = {s.index: 0.0 for s in self.shards}
        while True:
            pending = [r for r in self.records if r.state is JobState.PENDING]
            if not pending:
                break
            # the shard that frees first makes the next decision
            s_idx = min(shard_free, key=lambda i: (shard_free[i], i))
            t = shard_free[s_idx]
            ready = [r for r in pending if self._ready_time(r) <= t]
            if not ready:
                # advance this shard's clock to the next arrival /
                # dependency release (every pending job's predecessor
                # is strictly earlier in sequence order, so some job
                # always has a finite ready time — no deadlock)
                t_next = min(self._ready_time(r) for r in pending)
                assert t_next != float("inf"), "dependency cycle"
                shard_free[s_idx] = max(t, t_next)
                continue
            # deadline shedding: a job whose turn arrives too late is
            # CANCELLED (typed terminal state, never a silent drop)
            expired = [
                r for r in ready
                if r.job.deadline is not None and t > r.job.deadline
            ]
            if expired:
                for r in expired:
                    r.transition(JobState.CANCELLED)
                    r.error = (
                        f"deadline {r.job.deadline:g}s passed before "
                        f"start (t={t:g}s)"
                    )
                continue
            # pack: highest priority first, FIFO within equal priority
            rec = min(ready, key=lambda r: (-r.job.priority, r.submit_index))
            shard = self.shards[s_idx]
            rec.transition(JobState.SCHEDULED)
            rec.shard = s_idx
            rec.start_time = t
            rec.transition(JobState.RUNNING)
            try:
                outcome = self.runner(rec.job, shard, t)
            except Exception as exc:  # noqa: BLE001 — isolate job crashes
                outcome = RunOutcome(
                    duration=0.0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            duration = max(float(outcome.duration), 0.0)
            rec.finish_time = t + duration
            shard_free[s_idx] = rec.finish_time
            rec.payload = outcome.payload
            if outcome.error is not None:
                rec.error = outcome.error
                rec.transition(JobState.FAILED)
            else:
                rec.transition(JobState.DONE)
        return list(self.records)
