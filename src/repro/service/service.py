"""EigenService: the eigensolver-as-a-service facade (DESIGN.md §5i).

Composes the service layer end-to-end: jobs are admitted through the
:class:`~repro.service.scheduler.Scheduler` (shards, priorities, quotas,
deadlines), each job's cluster configuration is chosen by the
:mod:`~repro.perfmodel.autotune` model, sequence steps warm-start from
the :class:`~repro.service.warmstart.WarmStartCache`, and every solve
runs through the ordinary :class:`~repro.core.ChaseSolver` on a fresh
per-job virtual cluster sized to the job's shard — so fault recovery
(§5f), mixed precision (§5g), transports (§5h) and the transport-parity
assertion all apply per job, and one job's faults cannot perturb
another's numerics (they share no cluster state).

Typical use::

    svc = EigenService(total_ranks=8, n_shards=2)
    for k, H in enumerate(hamiltonians):
        svc.submit(SolveJob(H=H, nev=40, nex=20,
                            sequence_id="scf", step=k))
    results = svc.run()

``repro serve --jobs jobs.json`` is the CLI face of the same loop.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Sequence

import numpy as np

from repro.core import ChaseConfig, ChaseSolver
from repro.core.precision import narrow_dtype
from repro.core.sequence import starting_basis
from repro.perfmodel.autotune import (
    TuneConfig,
    applied as _tuned_scope,
    autotune as _model_autotune,
    default_config,
)
from repro.perfmodel.machine import MachineSpec
from repro.runtime.backend import CommBackend
from repro.runtime.faults import FaultError, FaultPlan, RecoveryExhaustedError
from repro.service.jobs import JobRecord, JobState, ServiceResult, SolveJob
from repro.service.scheduler import (
    RunOutcome,
    Scheduler,
    Shard,
    partition_ranks,
)
from repro.service.warmstart import WarmStartCache, degree_hint

__all__ = ["EigenService", "scf_sequence", "jobs_from_spec", "load_jobs"]


def _parse_backend(backend) -> CommBackend:
    if isinstance(backend, CommBackend):
        return backend
    name = str(backend).lower()
    if name == "mpi":  # CLI shorthand, same mapping as `repro solve`
        return CommBackend.MPI_STAGED
    return CommBackend(name)


class EigenService:
    """Multi-tenant eigensolver service over the virtual cluster.

    Parameters
    ----------
    total_ranks / n_shards:
        The rank budget, partitioned into disjoint shards
        (:func:`~repro.service.scheduler.partition_ranks`); each job
        runs on one whole shard.
    backend / machine / transport:
        Cluster flavour for every job (``"nccl"`` / ``"mpi"`` / ...,
        machine spec, execution transport — DESIGN.md §5h).
    quota / max_queue:
        Admission control (per-tenant in-flight quota, bounded queue).
    warmstart / warmstart_bytes:
        Enable the sequence warm-start cache and its byte budget.
    tune:
        ``"off"`` — untuned default grid; ``"fast"`` (default) — a
        three-candidate model shoot-out (default vs pipelined/fused
        auto-collectives); ``"full"`` — the whole candidate space.
        Decisions are memoized per (shard size, problem shape).
    reuse_bounds / reuse_degrees:
        On a warm hit, skip the next step's Lanczos phase with the
        cached spectral bounds / seed the filter with the cached degree
        plan's :func:`~repro.service.warmstart.degree_hint`.
    refresh_extras:
        ``False`` (default) reuses the cached subspace *exactly*
        (bit-identical warm starts, see ``tests/test_warmstart.py``);
        ``True`` re-randomizes the ``nex`` buffer columns per step.
    """

    def __init__(
        self,
        *,
        total_ranks: int = 8,
        n_shards: int = 2,
        backend="nccl",
        machine: MachineSpec | None = None,
        transport: str | None = None,
        quota: int | None = None,
        max_queue: int = 64,
        warmstart: bool = True,
        warmstart_bytes: int = 64 << 20,
        tune: str = "fast",
        reuse_bounds: bool = True,
        reuse_degrees: bool = True,
        refresh_extras: bool = False,
        checkpoint_every: int | None = None,
    ) -> None:
        if tune not in ("off", "fast", "full"):
            raise ValueError(f"tune must be off/fast/full, got {tune!r}")
        self.shards = partition_ranks(total_ranks, n_shards)
        self.backend = _parse_backend(backend)
        self.machine = machine
        self.transport = transport
        self.tune = tune
        self.reuse_bounds = reuse_bounds
        self.reuse_degrees = reuse_degrees
        self.refresh_extras = refresh_extras
        self.checkpoint_every = checkpoint_every
        self.cache: WarmStartCache | None = (
            WarmStartCache(warmstart_bytes) if warmstart else None
        )
        self.scheduler = Scheduler(
            self.shards, runner=self._run_job,
            quota=quota, max_queue=max_queue,
        )
        #: memoized autotune decisions per (shard size, problem shape)
        self._tuned: dict[tuple, tuple[str, TuneConfig]] = {}

    # ------------------------------------------------------------ admission
    def submit(self, job: SolveJob, submit_time: float = 0.0) -> JobRecord:
        """Admit one job (raises the typed
        :class:`~repro.service.jobs.AdmissionError` on backpressure)."""
        return self.scheduler.submit(job, submit_time)

    def submit_many(
        self, jobs: Sequence[SolveJob | tuple[SolveJob, float]]
    ) -> list[JobRecord]:
        """Admit a batch; items are jobs or ``(job, submit_time)``."""
        recs = []
        for item in jobs:
            job, t = item if isinstance(item, tuple) else (item, 0.0)
            recs.append(self.submit(job, t))
        return recs

    def cancel(self, job_id: str) -> JobRecord:
        return self.scheduler.cancel(job_id)

    # ------------------------------------------------------------ execution
    def run(self) -> list[ServiceResult]:
        """Drain the queue and return one :class:`ServiceResult` per
        admitted job, in submission order."""
        return [self._assemble(rec) for rec in self.scheduler.run()]

    # ----------------------------------------------------------- internals
    def _tuned_config(self, shard: Shard, job: SolveJob) -> tuple[str, TuneConfig]:
        key = (shard.n_ranks, job.N, job.nev, job.nex,
               np.dtype(job.H.dtype).str)
        hit = self._tuned.get(key)
        if hit is not None:
            return hit
        if self.tune == "off":
            cfg = default_config(shard.n_ranks)
            decision = ("default", cfg)
        else:
            base = default_config(shard.n_ranks)
            if self.tune == "fast":
                candidates = [
                    base,
                    dataclasses.replace(base, algo="auto",
                                        pipeline_chunks=4, hemm_fusion=True),
                    dataclasses.replace(base, algo="auto",
                                        hemm_fusion=True),
                ]
            else:
                candidates = None  # full enumeration
            report = _model_autotune(
                shard.n_ranks, job.N, job.nev, job.nex,
                backend=self.backend, machine=self.machine,
                iterations=1, dtype=job.H.dtype, candidates=candidates,
            )
            cfg = report.best.config
            decision = (cfg.label(), cfg)
        self._tuned[key] = decision
        return decision

    def _run_job(self, job: SolveJob, shard: Shard, start_time: float) -> RunOutcome:
        from repro.distributed import DistributedHermitian

        dtype = np.dtype(job.H.dtype)
        overrides: dict[str, Any] = {}
        if job.deg is not None:
            overrides["deg"] = job.deg
        if job.max_iter is not None:
            overrides["max_iter"] = job.max_iter
        cfg = ChaseConfig(nev=job.nev, nex=job.nex, tol=job.tol, **overrides)

        # warm-start lookup (typed: "hit" or "miss:<reason>")
        warm = "cold"
        entry = None
        if self.cache is not None and job.sequence_id is not None:
            entry, miss = self.cache.get(job.sequence_id, job.N, job.ne, dtype)
            warm = "hit" if entry is not None else f"miss:{miss.value}"
        if entry is not None and self.reuse_degrees \
                and entry.degrees is not None and entry.degrees.size:
            cfg = dataclasses.replace(
                cfg, deg=degree_hint(entry.degrees, cfg.deg, cfg.max_deg),
            )

        label, tcfg = self._tuned_config(shard, job)
        payload: dict[str, Any] = {
            "tuned_label": label, "tuned_config": tcfg, "warmstart": warm,
        }
        faults = None
        if job.fault_seed is not None:
            faults = FaultPlan.random(
                job.fault_seed, shard.n_ranks,
                horizon=job.fault_horizon, n_events=job.fault_events,
            )

        # each job gets a fresh cluster sized to its shard: fault plans,
        # rank clocks and transport accounts are job-private by
        # construction, so concurrent jobs cannot perturb each other
        with _tuned_scope(
            tcfg, n_ranks=shard.n_ranks, backend=self.backend,
            machine=self.machine, transport=self.transport,
        ) as grid:
            Hd = DistributedHermitian.from_dense(grid, job.H)
            ckpt = job.checkpoint_every if job.checkpoint_every is not None \
                else self.checkpoint_every
            solver = ChaseSolver(grid, Hd, cfg, faults=faults,
                                 checkpoint_every=ckpt)
            rng = np.random.default_rng(job.seed)
            V0 = None
            bounds = None
            if entry is not None:
                V0 = starting_basis(
                    entry.basis, job.N, cfg, dtype, rng,
                    refresh_extras=self.refresh_extras,
                )
                if self.reuse_bounds:
                    bounds = entry.bounds
            try:
                res = solver.solve(V0=V0, rng=rng, return_vectors=True,
                                   bounds=bounds, return_subspace=True)
            except (FaultError, RecoveryExhaustedError,
                    np.linalg.LinAlgError) as exc:
                return RunOutcome(
                    duration=grid.cluster.makespan(),
                    payload=payload,
                    error=f"{type(exc).__name__}: {exc}",
                )
            payload["comm_stats"] = grid.comm_stats()

        saved = 0
        if warm == "hit" and entry is not None:
            saved = max(0, entry.cold_iterations - res.iterations)
        if self.cache is not None and job.sequence_id is not None \
                and res.converged and res.subspace is not None:
            # chain the sequence's *cold anchor* iteration count through
            # the cache so every later step's saving is measured against
            # the step that actually started cold
            cold_iter = entry.cold_iterations if entry is not None \
                else res.iterations
            # a mixed-precision tuned sequence stores its subspace at
            # the filter's narrow dtype — half the cache budget, and
            # get() upcasts transparently for the next (wide) step
            store_dtype = None
            if tcfg.filter_dtype != "fp64":
                narrow = narrow_dtype(dtype)
                if narrow != dtype:
                    store_dtype = narrow
            self.cache.put(
                job.sequence_id, step=job.step, basis=res.subspace,
                bounds=res.bounds, degrees=res.degrees,
                iterations=res.iterations, cold_iterations=cold_iter,
                store_dtype=store_dtype,
            )
        payload.update(
            iterations_saved=saved,
            iterations=res.iterations,
            matvecs=res.matvecs,
            filter_matvecs=res.trace.total_matvecs,
            converged=res.converged,
            eigenvalues=res.eigenvalues,
            residual_norms=res.residual_norms,
            recoveries=res.recoveries,
            makespan=res.makespan,
            chase=res,
        )
        return RunOutcome(duration=res.makespan, payload=payload)

    def _assemble(self, rec: JobRecord) -> ServiceResult:
        p = rec.payload
        return ServiceResult(
            job_id=rec.job.job_id,
            tenant=rec.job.tenant,
            state=rec.state,
            sequence_id=rec.job.sequence_id,
            step=rec.job.step,
            shard=rec.shard,
            submit_time=rec.submit_time,
            start_time=rec.start_time,
            finish_time=rec.finish_time,
            queue_wait=rec.queue_wait,
            makespan=p.get("makespan", 0.0),
            tuned_label=p.get("tuned_label", "default"),
            tuned_config=p.get("tuned_config"),
            warmstart=p.get("warmstart", "cold"),
            iterations_saved=p.get("iterations_saved", 0),
            iterations=p.get("iterations", 0),
            matvecs=p.get("matvecs", 0),
            filter_matvecs=p.get("filter_matvecs", 0),
            converged=p.get("converged", False),
            eigenvalues=p.get("eigenvalues"),
            residual_norms=p.get("residual_norms"),
            recoveries=p.get("recoveries", 0),
            error=rec.error,
            comm_stats=p.get("comm_stats", ()),
            chase=p.get("chase"),
        )


# --------------------------------------------------------------- job specs
def scf_sequence(
    N: int,
    steps: int,
    *,
    seed: int = 0,
    drift: float = 1e-2,
    dtype=np.float64,
) -> list[np.ndarray]:
    """A correlated Hermitian sequence mimicking an SCF loop: a uniform
    test matrix followed by geometrically shrinking random Hermitian
    perturbations (the self-consistent potential converging)."""
    from repro.matrices import uniform_matrix

    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = np.random.default_rng(seed)
    dtype = np.dtype(dtype)
    H = uniform_matrix(N, rng=rng, dtype=dtype)
    out = [H]
    for k in range(1, steps):
        P = rng.standard_normal((N, N))
        if dtype.kind == "c":
            P = P + 1j * rng.standard_normal((N, N))
        P = (P + P.conj().T) / 2
        H = (H + (drift / 2**k) * P).astype(dtype)
        out.append(H)
    return out


def jobs_from_spec(spec: dict) -> list[tuple[SolveJob, float]]:
    """Expand a jobs-file dict into ``(job, submit_time)`` pairs.

    Top-level key ``jobs`` lists entries; each entry names a problem
    (``n``, ``nev``, ``nex``, optional ``seed``/``tol``/``dtype``) plus
    service fields (``tenant``, ``priority``, ``deadline``,
    ``submit_time``, ``fault_seed``).  An entry with ``sequence`` and
    ``steps`` expands into that many correlated jobs (one per SCF step,
    drifting by ``drift``) sharing the warm-start cache entry.
    """
    entries = spec.get("jobs")
    if not isinstance(entries, list) or not entries:
        raise ValueError("jobs file needs a non-empty top-level 'jobs' list")
    out: list[tuple[SolveJob, float]] = []
    for i, e in enumerate(entries):
        if not isinstance(e, dict):
            raise ValueError(f"jobs[{i}] must be a mapping")
        try:
            N = int(e["n"])
            nev = int(e["nev"])
        except KeyError as exc:
            raise ValueError(f"jobs[{i}] is missing required key {exc}") from None
        nex = int(e.get("nex", max(2, nev // 2)))
        seed = int(e.get("seed", i))
        dtype = np.dtype(e.get("dtype", "float64"))
        common = dict(
            nev=nev, nex=nex,
            tol=float(e.get("tol", 1e-10)),
            tenant=str(e.get("tenant", "default")),
            priority=int(e.get("priority", 0)),
            deadline=None if e.get("deadline") is None
            else float(e["deadline"]),
            fault_seed=None if e.get("fault_seed") is None
            else int(e["fault_seed"]),
        )
        submit_time = float(e.get("submit_time", 0.0))
        seq = e.get("sequence")
        steps = int(e.get("steps", 1))
        if seq is None and steps != 1:
            raise ValueError(f"jobs[{i}]: 'steps' > 1 requires 'sequence'")
        hams = scf_sequence(N, steps, seed=seed,
                            drift=float(e.get("drift", 1e-2)), dtype=dtype)
        for k, H in enumerate(hams):
            out.append((
                SolveJob(H=H, sequence_id=seq, step=k, seed=seed + k,
                         **common),
                submit_time,
            ))
    return out


def load_jobs(path: str) -> list[tuple[SolveJob, float]]:
    """Load a jobs file (JSON always; YAML when PyYAML is installed)."""
    ext = os.path.splitext(path)[1].lower()
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    if ext in (".yml", ".yaml"):
        try:
            import yaml
        except ImportError:
            raise RuntimeError(
                f"{path}: reading YAML job files needs PyYAML, which is "
                "not installed — use a .json jobs file instead"
            ) from None
        spec = yaml.safe_load(text)
    else:
        spec = json.loads(text)
    if not isinstance(spec, dict):
        raise ValueError(f"{path}: jobs file must be a mapping")
    return jobs_from_spec(spec)
