"""Eigensolver-as-a-service (DESIGN.md §5i).

The service layer turns the one-shot solver into a persistent,
multi-tenant queue — the deployment shape ChASE actually has inside DFT
codes, where every SCF cycle submits a correlated eigenproblem:

* :mod:`repro.service.jobs` — :class:`SolveJob` specs and the typed
  PENDING→…→DONE/FAILED/CANCELLED lifecycle;
* :mod:`repro.service.scheduler` — shard partitioning and the
  priority/quota/deadline packing loop;
* :mod:`repro.service.warmstart` — the LRU subspace cache that carries
  converged state across sequence steps;
* :mod:`repro.service.service` — :class:`EigenService`, wiring it all
  to :class:`~repro.core.ChaseSolver` (``repro serve`` on the CLI).
"""

from repro.service.jobs import (
    AdmissionError,
    JobRecord,
    JobState,
    JobStateError,
    QueueFullError,
    QuotaExceededError,
    ServiceResult,
    SolveJob,
    TERMINAL_STATES,
)
from repro.service.scheduler import (
    RunOutcome,
    Scheduler,
    Shard,
    partition_ranks,
)
from repro.service.service import (
    EigenService,
    jobs_from_spec,
    load_jobs,
    scf_sequence,
)
from repro.service.warmstart import (
    CacheEntry,
    WarmStartCache,
    WarmStartMiss,
    degree_hint,
)

__all__ = [
    "AdmissionError",
    "CacheEntry",
    "EigenService",
    "JobRecord",
    "JobState",
    "JobStateError",
    "QueueFullError",
    "QuotaExceededError",
    "RunOutcome",
    "Scheduler",
    "ServiceResult",
    "Shard",
    "SolveJob",
    "TERMINAL_STATES",
    "WarmStartCache",
    "WarmStartMiss",
    "degree_hint",
    "jobs_from_spec",
    "load_jobs",
    "partition_ranks",
    "scf_sequence",
]
