"""Job specifications and lifecycle records (DESIGN.md §5i).

The service layer turns the single-shot :class:`~repro.core.ChaseSolver`
into a multi-tenant queue: every request is a :class:`SolveJob` (an
immutable spec — matrix, subspace sizes, tenant, priority, optional
sequence membership and deadline), tracked through a typed lifecycle

    PENDING -> SCHEDULED -> RUNNING -> DONE | FAILED
            \\-> CANCELLED (deadline missed / dependency dropped / user)

by a mutable :class:`JobRecord`.  Transitions are *enforced* — an
illegal move raises :class:`JobStateError`, so a scheduler bug can never
silently drop a job or resurrect a terminal one (the property suite in
``tests/test_service.py`` leans on this).

Admission failures are typed: :class:`QueueFullError` (bounded queue
backpressure) and :class:`QuotaExceededError` (per-tenant in-flight
quota), both :class:`AdmissionError`, so callers can distinguish
"retry later" from "shed load".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "JobState",
    "TERMINAL_STATES",
    "AdmissionError",
    "QueueFullError",
    "QuotaExceededError",
    "JobStateError",
    "SolveJob",
    "JobRecord",
    "ServiceResult",
]


class JobState(enum.Enum):
    """Lifecycle of a solve job."""

    PENDING = "pending"        # admitted, waiting for a shard
    SCHEDULED = "scheduled"    # picked for a shard, about to run
    RUNNING = "running"        # solver executing
    DONE = "done"              # solve returned (converged or not)
    FAILED = "failed"          # solver raised (e.g. recovery exhausted)
    CANCELLED = "cancelled"    # deadline missed or cancelled before start

    @property
    def terminal(self) -> bool:
        return self in TERMINAL_STATES


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: legal lifecycle transitions (terminal states have none)
_LEGAL = {
    JobState.PENDING: frozenset({JobState.SCHEDULED, JobState.CANCELLED}),
    JobState.SCHEDULED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


class AdmissionError(RuntimeError):
    """The service refused to admit a job (backpressure)."""


class QueueFullError(AdmissionError):
    """The bounded service queue is full."""


class QuotaExceededError(AdmissionError):
    """The tenant is at its in-flight job quota."""


class JobStateError(RuntimeError):
    """An illegal lifecycle transition was attempted."""


_job_counter = itertools.count()


def _auto_job_id() -> str:
    return f"job-{next(_job_counter)}"


@dataclass(frozen=True, eq=False)
class SolveJob:
    """One solve request (immutable spec).

    Attributes
    ----------
    H:
        Dense Hermitian matrix (the service solves it on a shard of the
        virtual cluster).
    nev / nex / tol:
        Solver parameters (see :class:`~repro.core.ChaseConfig`).
    tenant:
        Accounting principal; per-tenant quotas apply at admission.
    priority:
        Higher runs earlier; FIFO within equal priority.
    sequence_id / step:
        Membership in a correlated sequence (DFT SCF loop).  Steps of a
        sequence run in order and share the warm-start cache entry.
    deadline:
        Latest acceptable *start* time in modeled service seconds; a job
        whose turn comes later is CANCELLED, never silently dropped.
    seed:
        Seed of the solve's random basis / fresh extras (determinism).
    deg / max_iter:
        Optional :class:`~repro.core.ChaseConfig` overrides.
    fault_seed / fault_events / fault_horizon:
        When ``fault_seed`` is set, a seeded :class:`FaultPlan` is armed
        on the job's shard (DESIGN.md §5f) — recovery runs *inside* the
        job without perturbing concurrently scheduled jobs.
    """

    H: np.ndarray
    nev: int
    nex: int
    tol: float = 1e-10
    tenant: str = "default"
    priority: int = 0
    sequence_id: str | None = None
    step: int = 0
    deadline: float | None = None
    seed: int = 0
    deg: int | None = None
    max_iter: int | None = None
    fault_seed: int | None = None
    fault_events: int = 4
    fault_horizon: float = 0.01
    checkpoint_every: int | None = None
    job_id: str = field(default_factory=_auto_job_id)

    def __post_init__(self) -> None:
        H = np.asarray(self.H)
        if H.ndim != 2 or H.shape[0] != H.shape[1]:
            raise ValueError(f"H must be square, got shape {H.shape}")
        object.__setattr__(self, "H", H)
        if self.nev < 1 or self.nex < 1:
            raise ValueError("need nev >= 1 and nex >= 1")
        if self.nev + self.nex > H.shape[0]:
            raise ValueError(
                f"subspace ne={self.nev + self.nex} exceeds N={H.shape[0]}"
            )
        if self.step < 0:
            raise ValueError("sequence step must be >= 0")
        if self.step > 0 and self.sequence_id is None:
            raise ValueError("step > 0 requires a sequence_id")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0 (modeled seconds)")

    @property
    def N(self) -> int:
        return self.H.shape[0]

    @property
    def ne(self) -> int:
        return self.nev + self.nex

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        seq = f", seq={self.sequence_id}[{self.step}]" if self.sequence_id else ""
        return (
            f"SolveJob({self.job_id}: N={self.N}, nev={self.nev}, "
            f"tenant={self.tenant!r}, prio={self.priority}{seq})"
        )


@dataclass
class JobRecord:
    """Mutable lifecycle record of one admitted job.

    All times are modeled service seconds on the shared virtual
    timeline (submission at ``submit_time``, shard pickup at
    ``start_time``, completion at ``finish_time``).
    """

    job: SolveJob
    submit_index: int
    submit_time: float = 0.0
    state: JobState = JobState.PENDING
    shard: int | None = None
    start_time: float | None = None
    finish_time: float | None = None
    error: str | None = None
    #: payload left by the runner (picked up by ServiceResult assembly)
    payload: dict[str, Any] = field(default_factory=dict)

    def transition(self, new: JobState) -> None:
        if new not in _LEGAL[self.state]:
            raise JobStateError(
                f"{self.job.job_id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new

    @property
    def queue_wait(self) -> float | None:
        """Admission-to-start wait in modeled seconds (None until start)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


@dataclass(frozen=True)
class ServiceResult:
    """Per-job outcome the service returns (DESIGN.md §5i).

    Records the scheduling story (shard, queue wait, autotune choice),
    the warm-start story (hit/miss/cold, iterations saved vs the
    sequence's cold anchor step) and the solver outcome.  ``chase`` is
    the full :class:`~repro.core.ChaseResult` for DONE jobs (``None``
    for cancelled/failed-before-solve jobs).
    """

    job_id: str
    tenant: str
    state: JobState
    sequence_id: str | None = None
    step: int = 0
    shard: int | None = None
    submit_time: float = 0.0
    start_time: float | None = None
    finish_time: float | None = None
    queue_wait: float | None = None
    makespan: float = 0.0
    #: autotune decision for this job's shard ("default" when tuning off)
    tuned_label: str = "default"
    tuned_config: Any = None
    #: "cold" (no sequence), "hit", or a typed miss ("miss:absent",
    #: "miss:dimension", "miss:dtype", "miss:corrupt")
    warmstart: str = "cold"
    #: iterations this step saved vs the sequence's cold anchor step
    #: (0 for cold starts and misses)
    iterations_saved: int = 0
    iterations: int = 0
    matvecs: int = 0
    #: MatVecs spent inside the Chebyshev filter only (the warm-start
    #: acceptance metric — excludes RR/residual/Lanczos applies)
    filter_matvecs: int = 0
    converged: bool = False
    eigenvalues: np.ndarray | None = None
    residual_norms: np.ndarray | None = None
    recoveries: int = 0
    error: str | None = None
    comm_stats: tuple = ()
    chase: Any = None

    @property
    def warm_hit(self) -> bool:
        return self.warmstart == "hit"
