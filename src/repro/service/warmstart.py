"""Warm-start cache: converged subspaces reused across sequence steps.

ChASE's founding use case is *sequences* of correlated eigenproblems
(paper Sec. 1; the sequences paper arXiv:1805.10121 quantifies the
benefit): step ``k``'s converged subspace, spectral bounds and degree
plan are an excellent start for step ``k+1``.  :class:`WarmStartCache`
keys that state on ``sequence_id``:

* **subspace** — the full ``N x ne`` final search block (locked columns
  first); reused verbatim (``refresh_extras=False``) or topped up with
  fresh random extras through
  :func:`repro.core.sequence.starting_basis`;
* **bounds** — the Lanczos spectral estimates, letting the next step
  skip its Lanczos phase entirely (``ChaseSolver.solve(bounds=...)``);
* **degrees** — the final per-column Chebyshev degree plan, distilled
  into an initial-degree hint (never *below* the configured ``deg`` —
  a warm start is never less aggressive than a cold one).

Safety: every entry carries a CRC of its payload bytes.  A lookup whose
dimensions, dtype or checksum do not match is a **typed miss** (the
entry is dropped and the solve proceeds cold) — a corrupted cache can
cost iterations but can never produce a wrong answer.  Capacity is a
byte budget with LRU eviction.

Mixed precision (DESIGN.md §5j): a tuned sequence whose filter ran in a
narrow working dtype may store its subspace narrowly (``put(...,
store_dtype=...)`` — the converged basis is only accurate to the narrow
tier's floor anyway, and the entry costs half the budget).  A later
lookup at a *wider* dtype of the same kind upcasts the stored basis on
the way out instead of missing: the cache keeps the narrow copy, the
caller gets a widened view sealed with its own checksum.  Lookups at a
*narrower* or kind-incompatible dtype remain typed ``DTYPE`` misses —
downcasting would silently discard converged digits.
"""

from __future__ import annotations

import dataclasses
import enum
import zlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.lanczos import SpectralBounds

__all__ = ["WarmStartMiss", "CacheEntry", "WarmStartCache", "degree_hint"]


class WarmStartMiss(enum.Enum):
    """Why a warm-start lookup returned nothing (typed, never silent)."""

    ABSENT = "absent"          # no entry for this sequence_id
    DIMENSION = "dimension"    # cached N or ne does not match the job
    DTYPE = "dtype"            # cached dtype does not match the job
    CORRUPT = "corrupt"        # payload checksum mismatch


@dataclass
class CacheEntry:
    """Cached state of one sequence's most recent converged step."""

    sequence_id: str
    step: int
    basis: np.ndarray            # full N x ne subspace
    bounds: SpectralBounds
    degrees: np.ndarray | None   # final per-column degree plan
    iterations: int              # iterations the producing step took
    cold_iterations: int         # iterations the sequence's cold anchor took
    checksum: int = 0

    @property
    def nbytes(self) -> int:
        n = self.basis.nbytes
        if self.degrees is not None:
            n += self.degrees.nbytes
        return n

    def _crc(self) -> int:
        crc = zlib.crc32(np.ascontiguousarray(self.basis).tobytes())
        if self.degrees is not None:
            crc = zlib.crc32(
                np.ascontiguousarray(self.degrees).tobytes(), crc
            )
        crc = zlib.crc32(
            np.array(
                [self.bounds.b_sup, self.bounds.mu1, self.bounds.mu_ne],
                dtype=np.float64,
            ).tobytes(),
            crc,
        )
        return crc

    def seal(self) -> "CacheEntry":
        self.checksum = self._crc()
        return self

    @property
    def intact(self) -> bool:
        return self._crc() == self.checksum


def degree_hint(degrees: np.ndarray, deg: int, max_deg: int) -> int:
    """Initial-degree hint from a previous step's final degree plan.

    The even-rounded median of the plan, clamped to ``[deg, max_deg]``:
    reusing the plan may make the first warm iteration *more* aggressive
    (the previous step needed high degrees) but never less aggressive
    than the configured cold start — so a warm start cannot lose
    iterations to a timid filter.
    """
    med = float(np.median(np.asarray(degrees, dtype=np.float64)))
    hint = int(np.ceil(med / 2.0) * 2)
    return max(deg, min(hint, max(deg, max_deg)))


class WarmStartCache:
    """LRU byte-budget cache of :class:`CacheEntry` by ``sequence_id``."""

    def __init__(self, max_bytes: int = 64 << 20) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------- queries
    @property
    def nbytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence_id: str) -> bool:
        return sequence_id in self._entries

    def get(
        self, sequence_id: str, N: int, ne: int, dtype
    ) -> tuple[CacheEntry | None, WarmStartMiss | None]:
        """Look up the entry for ``sequence_id`` against the job's shape.

        Returns ``(entry, None)`` on a hit (refreshing LRU recency) or
        ``(None, miss)`` with the typed miss reason.  Mismatched and
        corrupt entries are evicted — they can never satisfy a future
        lookup of this sequence either.

        A narrowly stored basis (``put(..., store_dtype=...)``) looked
        up at a wider dtype of the same kind is a **hit**: the checksum
        is verified on the stored bytes first, then the basis is upcast
        into a fresh sealed entry for the caller while the cache keeps
        the narrow original.  Only a narrower or kind-incompatible
        request is a ``DTYPE`` miss.
        """
        want = np.dtype(dtype)
        entry = self._entries.get(sequence_id)
        if entry is None:
            self.misses += 1
            return None, WarmStartMiss.ABSENT
        if entry.basis.shape != (N, ne):
            self._drop(sequence_id)
            self.misses += 1
            return None, WarmStartMiss.DIMENSION
        have = entry.basis.dtype
        if have != want:
            upcastable = (
                have.kind == want.kind
                and np.result_type(have, want) == want
            )
            if not upcastable:
                self._drop(sequence_id)
                self.misses += 1
                return None, WarmStartMiss.DTYPE
        if not entry.intact:
            self._drop(sequence_id)
            self.misses += 1
            return None, WarmStartMiss.CORRUPT
        self._entries.move_to_end(sequence_id)
        self.hits += 1
        if have != want:
            entry = dataclasses.replace(
                entry, basis=entry.basis.astype(want)
            ).seal()
        return entry, None

    # ------------------------------------------------------------- updates
    def put(
        self,
        sequence_id: str,
        *,
        step: int,
        basis: np.ndarray,
        bounds: SpectralBounds,
        degrees: np.ndarray | None = None,
        iterations: int = 0,
        cold_iterations: int | None = None,
        store_dtype=None,
    ) -> bool:
        """Store (replace) the sequence's entry; returns False when the
        payload alone exceeds the byte budget (nothing is stored — the
        budget is a hard cap, not a goal).

        ``store_dtype`` narrows the stored basis (mixed-precision
        sequences, §5j): the subspace is only converged to the narrow
        tier's floor, so storing it wide wastes budget.  ``get`` at the
        wide dtype upcasts transparently.
        """
        stored = np.ascontiguousarray(basis)
        if store_dtype is not None and np.dtype(store_dtype) != stored.dtype:
            stored = np.ascontiguousarray(stored.astype(np.dtype(store_dtype)))
        entry = CacheEntry(
            sequence_id=sequence_id,
            step=int(step),
            basis=stored,
            bounds=bounds,
            degrees=None if degrees is None
            else np.ascontiguousarray(degrees),
            iterations=int(iterations),
            cold_iterations=int(
                iterations if cold_iterations is None else cold_iterations
            ),
        ).seal()
        if entry.nbytes > self.max_bytes:
            return False
        self._entries.pop(sequence_id, None)
        self._entries[sequence_id] = entry
        self._evict_to_budget()
        return True

    def _drop(self, sequence_id: str) -> None:
        self._entries.pop(sequence_id, None)

    def invalidate(self, sequence_id: str) -> bool:
        """Drop one sequence's entry (True when something was dropped)."""
        present = sequence_id in self._entries
        self._drop(sequence_id)
        return present

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        """Counters snapshot: entries, bytes held, hits/misses/evictions."""
        return {
            "entries": len(self._entries),
            "nbytes": self.nbytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def _evict_to_budget(self) -> None:
        while self.nbytes > self.max_bytes and len(self._entries) > 1:
            self._entries.popitem(last=False)
            self.evictions += 1
        # a lone over-budget entry cannot exist: put() rejects payloads
        # larger than the budget before storing them

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarmStartCache({len(self)} entries, "
            f"{self.nbytes}/{self.max_bytes} B, "
            f"{self.hits} hits / {self.misses} misses)"
        )
