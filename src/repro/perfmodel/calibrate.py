"""Calibrate a :class:`MachineSpec` against the *local* host.

The shipped machine models (JUWELS-Booster, LUMI-G) answer "what would
this run cost on the paper's testbed".  For a complementary question —
"what does the simulated algorithm predict for *my* machine" — this
module micro-benchmarks the local BLAS/LAPACK through NumPy/SciPy and
assembles a single-node :class:`MachineSpec` whose devices carry the
measured rates.  The same solver + phantom machinery then models local
runs; :func:`examples.local_model` (see ``examples/``) demonstrates the
round trip (predicted vs measured wall time of a real solve).

One knob calibration does **not** measure: the nonblocking **overlap
efficiency** (``CollectiveModel.overlap_efficiency``, DESIGN.md §5d) —
the fraction of an in-flight collective that progresses behind compute.
It is a property of the *communication stack*, not of local kernel
rates: device-side NCCL collectives progress at full rate (default
1.0), host-progressed staged MPI competes with the proxy thread
(default 0.35).  To calibrate it against a real machine, time a
compute-overlapped ``Iallreduce`` against a back-to-back one and set
the measured fraction via ``Grid2D.set_overlap_efficiency`` (or the
CLI ``--overlap`` flag); ``0.0`` recovers fully blocking behaviour.

The same applies to the **topology derates** of the hierarchical
collectives (``CollectiveModel.hop_latency`` and ``oversub_penalty``,
DESIGN.md §5e): a single-node calibration sees no switch fabric, so the
defaults are kept and every communicator on a calibrated machine is
intra-node — :func:`~repro.perfmodel.collectives.collective_cost`
degenerates to the flat model and the algorithm choice (including
``REPRO_COLL_ALGO`` and ``repro tune``'s winner) changes nothing
locally, exactly as on one real node.  To calibrate the derates on a
cluster, fit ``hop_latency`` to the latency gap between same-leaf and
cross-core ping-pongs and ``oversub_penalty`` to the busbw loss of an
all-to-all at full core oversubscription.

A note on the mixed-precision **condition-estimate threshold**
(``repro.core.precision.DEFAULT_COND_LIMIT = 1e6``, DESIGN.md §5g):
this is *not* a machine property and calibration leaves it alone.  fp32
can resolve column bases up to ``kappa ~ 1/eps32 ~ 8.4e6``; the default
keeps one order of magnitude of safety margin so that CholeskyQR on the
fp32-filtered block stays out of its shifted regime (Algorithm 4
switches variants on the same estimate — aligning the two thresholds
means a block the policy deems fp32-safe is also one plain CholeskyQR2
factorizes without shifting).  Tighten it only together with evidence
from the residual-floor telemetry (``ChaseResult.precision_log`` /
``precision_promote_reason``): if solves promote on "residual
stagnation" rather than "residual floor", fp32 noise is biting earlier
than the conditioning gate predicts and the limit should come down.
"""

from __future__ import annotations

import os
import time

import numpy as np
import scipy.linalg

from repro.perfmodel.machine import DeviceSpec, LinkSpec, MachineSpec

__all__ = [
    "measure_rate",
    "calibrate_local_machine",
    "predicted_backend_speedup",
]


def measure_rate(kind: str, n: int = 512, repeats: int = 3,
                 dtype=np.float64) -> float:
    """Measured FLOP/s of one local kernel class.

    ``kind`` is one of ``gemm``, ``syrk``, ``potrf``, ``geqrf``;
    ``dtype`` picks the working precision (fp32 measures the local
    BLAS's single-precision rate for the §5j rate table).
    """
    rng = np.random.default_rng(0)
    dt = np.dtype(dtype)
    A = rng.standard_normal((n, n)).astype(dt, copy=False)
    B = rng.standard_normal((n, n)).astype(dt, copy=False)
    G = (A @ A.T + n * np.eye(n, dtype=dt)).astype(dt, copy=False)
    tall = rng.standard_normal((4 * n, n // 4)).astype(dt, copy=False)

    if kind == "gemm":
        flops = 2.0 * n**3
        def op():
            return A @ B
    elif kind == "syrk":
        flops = float(n) * (n + 1) * n
        def op():
            return A.T @ A
    elif kind == "potrf":
        flops = n**3 / 3.0
        def op():
            return np.linalg.cholesky(G)
    elif kind == "geqrf":
        m, k = tall.shape
        flops = 2.0 * m * k * k - 2.0 * k**3 / 3.0
        def op():
            return scipy.linalg.qr(tall, mode="economic")
    else:
        raise KeyError(f"unknown kernel kind {kind!r}")

    op()  # warm up
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        op()
        best = min(best, time.perf_counter() - t0)
    return flops / best


def predicted_backend_speedup(
    n_ranks: int,
    *,
    cores: int | None = None,
    parallel_fraction: float = 0.9,
) -> float:
    """Amdahl bound for the real (host wall-clock) speedup of running the
    data plane on ``n_ranks`` OS processes (the ``mp`` transport,
    DESIGN.md §5h) instead of in-process.

    Only the rank-local arithmetic parallelizes — ``parallel_fraction``
    of the serial wall time, executed ``min(n_ranks, cores)``-way wide
    (one BLAS pool per worker process; extra ranks beyond the physical
    core count time-slice and add nothing).  The remaining serial
    fraction is the orchestrated control plane: model charges, staging,
    collectives' accumulation order, Python bookkeeping.

    ``cores`` defaults to the local ``os.cpu_count()``; pass the target
    machine's count to predict for other hosts.
    ``benchmarks/bench_backend_scaling.py`` compares this prediction
    against measured multi-core solve scaling — on a single-core box the
    bound degenerates to 1.0 and no real speedup is achievable.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel_fraction must be in [0, 1]")
    cores = cores if cores is not None else (os.cpu_count() or 1)
    ways = max(1, min(int(n_ranks), int(cores)))
    serial = 1.0 - parallel_fraction
    return 1.0 / (serial + parallel_fraction / ways)


def measure_bandwidth(nbytes: int = 64 * 1024 * 1024, repeats: int = 3) -> float:
    """Measured streaming bandwidth (B/s) of a copy-scale kernel."""
    x = np.zeros(nbytes // 8)
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        y = 2.0 * x
        best = min(best, time.perf_counter() - t0)
        del y
    return 2 * nbytes / best  # read + write


def calibrate_local_machine(n: int = 512,
                            half_rate_factor: float = 4.0) -> MachineSpec:
    """A single-node machine model with locally measured rates.

    The 'GPU' of the model is the host BLAS itself (this is a CPU-only
    calibration); links are fast local-memory placeholders, making the
    model useful for predicting *compute-bound* behaviour of the
    simulated algorithms on this machine.

    The per-dtype **rate table** (DESIGN.md §5j) is calibrated too: the
    fp32 factor is the measured fp32/fp64 GEMM rate ratio (clamped to
    ``[1, 4]`` — a local BLAS can fall anywhere between "no win" and
    the theoretical 4x of bandwidth-bound half traffic), while the half
    tiers keep ``half_rate_factor`` (host BLAS has no fp16/bf16 GEMM to
    measure; override after measuring on real accelerator hardware).
    fp64 is always 1.0 by construction and never appears in the table.
    """
    gemm = measure_rate("gemm", n)
    level3 = measure_rate("syrk", n)
    factor = measure_rate("potrf", n)
    geqrf = measure_rate("geqrf", n)
    gemm32 = measure_rate("gemm", n, dtype=np.float32)
    fp32_factor = max(1.0, min(4.0, gemm32 / gemm))
    bw = measure_bandwidth()
    dev = DeviceSpec(
        name="local-blas",
        gemm_rate=gemm,
        level3_rate=level3,
        factor_rate=factor,
        geqrf_rate=geqrf,
        blas1_bandwidth=bw,
        launch_overhead=2e-6,
        eff_half_flops=5e6,
        memory_bytes=8 * 1024**3,
        rate_table=(
            ("fp32", fp32_factor),
            ("bf16", float(half_rate_factor)),
            ("fp16", float(half_rate_factor)),
        ),
    )
    link = LinkSpec("local", latency=5e-7, bandwidth=bw)
    return MachineSpec(
        name="local-host",
        gpus_per_node=1,
        gpu=dev,
        cpu=dev,
        pcie=LinkSpec("copy", latency=1e-7, bandwidth=bw),
        nvlink=link,
        shm_mpi=link,
        ib_mpi=link,
        ib_nccl=link,
        max_nodes=1,
        mpi_call_overhead=1e-6,
        nccl_call_overhead=1e-6,
    )
