"""Flop counts and modeled execution times for dense linear-algebra kernels.

Flop counts follow the standard LAPACK working notes conventions.  All
counts are returned in *real* flops: a complex multiply-add is counted as
8 real flops (4 mul + 4 add), so complex GEMM is ``8 m n k`` while real
GEMM is ``2 m n k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.machine import DeviceSpec

__all__ = [
    "complex_factor",
    "bytes_per_scalar",
    "elem_bytes",
    "dtype_token",
    "dtype_rate_factor",
    "DEFAULT_RATE_FACTORS",
    "gemm_flops",
    "syrk_flops",
    "potrf_flops",
    "trsm_flops",
    "geqrf_flops",
    "heevd_flops",
    "axpy_flops",
    "norm_flops",
    "KernelTimeModel",
]


def complex_factor(dtype) -> int:
    """4 for complex dtypes (each complex mul-add = 4 real mul-add), else 1."""
    return 4 if np.dtype(dtype).kind == "c" else 1


def bytes_per_scalar(dtype) -> float:
    """Bytes of one *real scalar word* of ``dtype``.

    A complex value counts as two real words (so ``complex128`` -> 8.0,
    matching ``float64``); the string tokens ``"bf16"``/``"bfloat16"``
    map to 2.0 since NumPy has no native bfloat16.  This is the single
    place word widths live — payload compression ratios and workspace
    sizes derive from it instead of hard-coding 8/16.
    """
    if isinstance(dtype, str):
        token = dtype.strip().lower()
        if token in ("bf16", "bfloat16", "fp16"):
            return 2.0
        if token == "fp32":
            return 4.0
        if token == "fp64":
            return 8.0
    dt = np.dtype(dtype)
    return dt.itemsize / 2.0 if dt.kind == "c" else float(dt.itemsize)


def elem_bytes(dtype, like=None) -> float:
    """Bytes of one *element* of ``dtype``.

    For NumPy dtypes this is the plain itemsize (``complex128`` ->
    16.0).  For precision tokens (``"fp16"``/``"bf16"``/...) the word
    width is doubled when ``like`` is a complex dtype — a complex half
    element is two 2-byte real words.  Memory-model working sets and
    cast charges size 2-byte tiers through this helper instead of
    reading ``itemsize`` off the (wider) emulation storage.
    """
    if isinstance(dtype, str):
        width = bytes_per_scalar(dtype)
        if like is not None and np.dtype(like).kind == "c":
            return 2.0 * width
        return width
    return float(np.dtype(dtype).itemsize)


def dtype_token(dtype) -> str:
    """Canonical precision token (``"fp64"``/``"fp32"``/``"fp16"``/
    ``"bf16"``) for a dtype or token string, keyed on the real word
    width for NumPy dtypes."""
    if isinstance(dtype, str):
        token = dtype.strip().lower()
        return "bf16" if token in ("bf16", "bfloat16") else token
    width = bytes_per_scalar(dtype)
    if width <= 2.0:
        return "fp16"
    return "fp32" if width <= 4.0 else "fp64"


#: Fallback throughput multipliers relative to the device's calibrated
#: fp64 rates, used when the device carries no calibrated rate table.
#: fp64 is *exactly* 1.0 (the bit-identity gates depend on it); fp32 is
#: the classic 2x of vendor BLAS; the half tiers default to 4x — the
#: conservative word-width ratio, far below tensor-core peaks, and
#: overridable per machine via ``perfmodel.calibrate``.
DEFAULT_RATE_FACTORS = {
    "fp64": 1.0,
    "fp32": 2.0,
    "bf16": 4.0,
    "fp16": 4.0,
}


def dtype_rate_factor(dtype, device: DeviceSpec | None = None) -> float:
    """Throughput multiplier of ``dtype`` relative to the device's
    calibrated double-precision rates.

    Resolution order: the device's calibrated per-dtype rate table
    (``DeviceSpec.rate_factor``) when a device is given, then
    :data:`DEFAULT_RATE_FACTORS`, then the word-width ratio
    ``8 / bytes_per_scalar`` floored at 1.0.  ``float64``/``complex128``
    map to exactly 1.0 on every path so the default configuration
    multiplies rates by 1.0 and stays bit-identical.
    """
    token = dtype_token(dtype)
    if token == "fp64":
        return 1.0
    if device is not None:
        factor = device.rate_factor(token)
        if factor is not None:
            return float(factor)
    factor = DEFAULT_RATE_FACTORS.get(token)
    if factor is not None:
        return factor
    return max(1.0, 8.0 / bytes_per_scalar(dtype))


def gemm_flops(m: int, n: int, k: int, dtype=np.float64) -> float:
    """C(m,n) += A(m,k) B(k,n)."""
    return 2.0 * m * n * k * complex_factor(dtype)


def syrk_flops(n: int, k: int, dtype=np.float64) -> float:
    """Rank-k update of an n x n symmetric/Hermitian matrix: X^H X."""
    return 1.0 * n * (n + 1) * k * complex_factor(dtype)


def potrf_flops(n: int, dtype=np.float64) -> float:
    """Cholesky factorization of an n x n matrix."""
    return (n**3 / 3.0 + n**2 / 2.0) * complex_factor(dtype)


def trsm_flops(m: int, n: int, dtype=np.float64) -> float:
    """Triangular solve with an n x n triangle against m right-hand rows
    (X <- X R^{-1} with X of size m x n)."""
    return 1.0 * m * n * n * complex_factor(dtype)


def geqrf_flops(m: int, n: int, dtype=np.float64) -> float:
    """Householder QR of an m x n (m >= n) matrix, factor only."""
    return (2.0 * m * n * n - 2.0 * n**3 / 3.0) * complex_factor(dtype)


def heevd_flops(n: int, dtype=np.float64) -> float:
    """Full Hermitian eigendecomposition (values + vectors), D&C estimate."""
    return (4.0 * n**3 / 3.0 + 8.0 * n**3 / 3.0) * complex_factor(dtype)


def axpy_flops(n: int, dtype=np.float64) -> float:
    return 2.0 * n * complex_factor(dtype)


def norm_flops(n: int, dtype=np.float64) -> float:
    return 2.0 * n * complex_factor(dtype)


# kernel kind -> which DeviceSpec rate bounds it
_RATE_ATTR = {
    "gemm": "gemm_rate",
    "hemm": "gemm_rate",
    "syrk": "level3_rate",
    "trsm": "level3_rate",
    "potrf": "factor_rate",
    "geqrf": "geqrf_rate",
    "heevd": "factor_rate",
}


@dataclass(frozen=True)
class KernelTimeModel:
    """Maps (kernel kind, flop count) to modeled seconds on a device.

    The efficiency ramp ``f / (f + f_half)`` captures the well-known
    small-problem throughput loss of GPU BLAS without needing per-shape
    tables; large kernels asymptote to the device's effective rate.
    """

    device: DeviceSpec

    def time(self, kind: str, flops: float, bytes_touched: float = 0.0,
             dtype=None) -> float:
        if flops < 0:
            raise ValueError("negative flop count")
        dev = self.device
        if kind in _RATE_ATTR:
            rate = getattr(dev, _RATE_ATTR[kind])
            if dtype is not None:
                factor = dtype_rate_factor(dtype, dev)
                if factor != 1.0:
                    rate = rate * factor
            eff = flops / (flops + dev.eff_half_flops) if flops > 0 else 0.0
            compute = flops / (rate * eff) if flops > 0 else 0.0
            return dev.launch_overhead + compute
        if kind == "blas1":
            # bandwidth-bound; bytes_touched dominates
            return dev.launch_overhead + bytes_touched / dev.blas1_bandwidth
        raise KeyError(f"unknown kernel kind {kind!r}")
