"""Latency/bandwidth models for MPI and NCCL collective operations.

The models are the standard alpha-beta cost expressions:

* **MPI allreduce** — recursive halving/doubling (Rabenseifner):
  ``2 ceil(log2 p) alpha + 2 n beta (p-1)/p``; when ``p`` is not a power
  of two an extra preparation/return round is charged, which produces
  the dips at 4/16/64/256 nodes the paper observes for ChASE(STD) in
  Fig. 3a.
* **MPI broadcast** — binomial tree for short messages,
  scatter + allgather (van de Geijn) for long ones.
* **NCCL allreduce/broadcast** — pipelined ring: ``2 (p-1) alpha +
  2 n beta (p-1)/p`` (allreduce), ``(p-1) alpha + n beta`` (broadcast),
  with the ring bandwidth set by the slowest link it crosses (NVLink if
  the communicator lives in one node, GPUDirect-IB otherwise).

All methods return modeled seconds for one collective over ``p`` ranks
moving ``nbytes`` per rank.

Topology-aware costing (DESIGN.md §5e)
--------------------------------------

The flat methods above reduce the network to a ``spans_nodes`` boolean.
Two orthogonal refinements sharpen that:

* **Hop-aware link selection** — when a communicator carries a
  :class:`CommTopology` with a :class:`~repro.perfmodel.topology.FatTree`
  attached, the inter-node link is derated by the deepest switch level
  its traffic crosses (extra per-hop latency) and by its root-level
  oversubscription exposure (``core_fraction`` of node pairs crossing
  the core derates bandwidth).  Without a tree — or for intra-node
  traffic — the link is the seed model's, bit for bit.
* **Algorithm selection** — :func:`collective_cost` routes one
  collective through a :class:`CollectiveAlgo`: ``ring`` (the seed
  models' native flat algorithm, the default), ``tree`` (flat binomial
  tree, latency-optimal for short messages), ``hierarchical``
  (intra-node reduce -> inter-node allreduce among one leader per node
  -> intra-node bcast, keeping the bulk of the traffic on the fastest
  links), or ``auto`` (cheapest of the three per call).

Both refinements change *modeled time only*; the data movement and
numerics of :class:`repro.runtime.communicator.Communicator` are
untouched, and the default (``ring``, no tree) reproduces the seed
charges exactly.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.perfmodel.kernels import bytes_per_scalar
from repro.perfmodel.machine import LinkSpec, MachineSpec
from repro.perfmodel.topology import FatTree

__all__ = [
    "CollectiveModel",
    "MpiModel",
    "NcclModel",
    "CollectiveAlgo",
    "CommTopology",
    "CollectiveCharge",
    "collective_cost",
    "payload_ratio",
]

_EAGER_LIMIT = 64 * 1024  # bytes; binomial bcast below, pipelined above


def payload_ratio(buffer_dtype, payload_dtype) -> float:
    """Wire-byte fraction of a compressed collective payload.

    The ratio of the payload word width to the buffer word width,
    capped at 1.0 — compression never inflates a message (an fp32
    buffer sent with an fp32 payload, or any buffer with payload
    ``None``/``"none"``, costs exactly the uncompressed bytes).  Every
    cost-model and CommStats byte count of a compressed collective is
    the uncompressed count times this ratio, so the per-level
    conservation ``intra_bytes + inter_bytes == nbytes_eff * p`` holds
    unchanged (DESIGN.md §5g).
    """
    if payload_dtype is None:
        return 1.0
    if isinstance(payload_dtype, str) and \
            payload_dtype.strip().lower() in ("", "none", "fp64", "float64"):
        return 1.0
    return min(1.0, bytes_per_scalar(payload_dtype) / bytes_per_scalar(buffer_dtype))


def _is_pow2(p: int) -> bool:
    return p > 0 and (p & (p - 1)) == 0


def _log2ceil(p: int) -> int:
    return math.ceil(math.log2(p)) if p > 1 else 0


class CollectiveAlgo(enum.Enum):
    """Which algorithm a communicator's collectives are costed with."""

    RING = "ring"                  # the flat per-backend seed algorithm
    TREE = "tree"                  # flat binomial tree
    HIERARCHICAL = "hierarchical"  # two-level: intra-node / node leaders
    AUTO = "auto"                  # cheapest of the above per call

    @classmethod
    def parse(cls, value: "CollectiveAlgo | str | None") -> "CollectiveAlgo":
        """Coerce a user/env value; ``None``/empty means the default."""
        if value is None:
            return cls.RING
        if isinstance(value, cls):
            return value
        name = str(value).strip().lower()
        if not name:
            return cls.RING
        try:
            return cls(name)
        except ValueError:
            valid = ", ".join(a.value for a in cls)
            raise ValueError(
                f"unknown collective algorithm {value!r} (expected one of {valid})"
            ) from None


class CommTopology:
    """Where a communicator's members live: node ids + optional fat tree.

    Everything is derived once at construction (membership is immutable):
    the node groups for hierarchical costing and — when a
    :class:`FatTree` is attached — the deepest switch level crossed and
    the root-level oversubscription exposure of the member pairs.
    """

    __slots__ = ("nodes", "tree", "spans_nodes", "n_nodes", "local_sizes",
                 "max_local", "max_hops", "core_fraction")

    def __init__(self, nodes, tree: FatTree | None = None) -> None:
        self.nodes = tuple(int(n) for n in nodes)
        if not self.nodes:
            raise ValueError("topology needs at least one member")
        self.tree = tree
        uniq = sorted(set(self.nodes))
        self.n_nodes = len(uniq)
        self.spans_nodes = self.n_nodes > 1
        counts = {n: 0 for n in uniq}
        for n in self.nodes:
            counts[n] += 1
        self.local_sizes = tuple(counts[n] for n in uniq)
        self.max_local = max(self.local_sizes)
        if tree is not None and self.spans_nodes:
            prof = tree.comm_profile(uniq)
            self.max_hops = int(prof["max_hops"])
            self.core_fraction = float(prof["core_fraction"])
        else:
            # no tree: the seed's boolean view (one switch level)
            self.max_hops = 2 if self.spans_nodes else 0
            self.core_fraction = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommTopology({len(self.nodes)} ranks on {self.n_nodes} nodes, "
            f"max_hops={self.max_hops}, core={self.core_fraction:.2f}, "
            f"tree={'yes' if self.tree is not None else 'no'})"
        )


@dataclass(frozen=True)
class CollectiveCharge:
    """Modeled time plus the per-level accounting of one collective.

    The byte counters split the legacy ``bytes_moved`` contribution
    (``nbytes * p``) by the deepest level each participant's payload
    crosses: node leaders are attributed to the inter-node level, all
    other ranks to the intra-node level — so
    ``intra_bytes + inter_bytes == nbytes * p`` always, whatever the
    algorithm (the conservation property tested in
    ``tests/test_hierarchical_collectives.py``).
    """

    time: float
    intra_messages: int = 0
    inter_messages: int = 0
    intra_bytes: float = 0.0
    inter_bytes: float = 0.0


@dataclass(frozen=True)
class CollectiveModel:
    """Base class; concrete models pick links and algorithms.

    ``overlap_efficiency`` models how well a *nonblocking* collective
    progresses while the issuing rank computes (the fraction of wall
    time between issue and ``wait()`` during which the transfer makes
    progress).  Device-resident NCCL collectives run on dedicated
    copy/SM resources and overlap almost perfectly (1.0); host-staged
    MPI without a progress thread mostly advances inside MPI calls, so
    its default is far lower.  The knob only affects the clock
    accounting of ``Communicator.iallreduce``/``ibcast`` — blocking
    collectives and all byte/message counters are untouched.
    """

    machine: MachineSpec
    #: fraction of a nonblocking collective that can hide behind compute
    overlap_efficiency: float = 1.0
    #: added latency per switch hop beyond the first leaf level (s);
    #: only applied when a FatTree exposes deeper crossings
    hop_latency: float = 2.0e-7
    #: fractional bandwidth derate at full root-level oversubscription
    #: exposure: bw_eff = bw / (1 + oversub_penalty * core_fraction)
    oversub_penalty: float = 0.5

    def _link(self, spans_nodes: bool) -> LinkSpec:
        raise NotImplementedError

    def _call_overhead(self) -> float:
        raise NotImplementedError

    def link_for(self, topo: CommTopology) -> LinkSpec:
        """Hop-aware link for a communicator's inter-node traffic.

        Without a fat tree — or when the members share one leaf switch —
        this is exactly the flat model's link object, so the modeled
        charges are bit-identical to the seed.  Deeper crossings add
        ``hop_latency`` per extra switch hop and derate bandwidth by the
        root-level oversubscription exposure.
        """
        base = self._link(topo.spans_nodes)
        extra_hops = max(0, topo.max_hops - 2)
        if extra_hops == 0 and topo.core_fraction == 0.0:
            return base
        return LinkSpec(
            name=f"{base.name}+{topo.max_hops}hop",
            latency=base.latency + self.hop_latency * extra_hops,
            bandwidth=base.bandwidth
            / (1.0 + self.oversub_penalty * topo.core_fraction),
        )

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool, *,
                  link: LinkSpec | None = None) -> float:
        raise NotImplementedError

    def bcast(self, nbytes: float, p: int, spans_nodes: bool, *,
              link: LinkSpec | None = None) -> float:
        raise NotImplementedError

    def allgather(self, nbytes_per_rank: float, p: int, spans_nodes: bool, *,
                  link: LinkSpec | None = None) -> float:
        """Ring allgather of p blocks of nbytes_per_rank each."""
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        steps = p - 1
        return (
            self._call_overhead()
            + steps * link.latency
            + steps * nbytes_per_rank / link.bandwidth
        )

    def reduce(self, nbytes: float, p: int, spans_nodes: bool, *,
               link: LinkSpec | None = None) -> float:
        # binomial-tree reduce; same leading cost as bcast
        return self.bcast(nbytes, p, spans_nodes, link=link)

    # -- flat binomial-tree variants (the ``tree`` CollectiveAlgo) ----------
    def tree_bcast(self, nbytes: float, p: int, spans_nodes: bool, *,
                   link: LinkSpec | None = None) -> float:
        """Binomial-tree broadcast: ``ceil(log2 p)`` rounds of the full
        payload — latency-optimal, bandwidth-suboptimal."""
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        rounds = _log2ceil(p)
        return self._call_overhead() + rounds * link.time(nbytes)

    def tree_allreduce(self, nbytes: float, p: int, spans_nodes: bool, *,
                       link: LinkSpec | None = None) -> float:
        """Binomial reduce-to-root followed by a binomial broadcast."""
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        rounds = _log2ceil(p)
        return self._call_overhead() + 2 * rounds * link.time(nbytes)


@dataclass(frozen=True)
class MpiModel(CollectiveModel):
    """Host-side MPI collectives (Open MPI defaults).

    Besides the alpha-beta terms, large-message MPI collectives lose
    effective bandwidth as the communicator grows (host-memory staging of
    intermediate buffers, switch contention, no GPUDirect): modeled as

        bw_eff(p) = bw / (1 + kappa * max(0, log2(p) - 1))

    This degradation — absent from the NCCL ring, which keeps the wire
    saturated — is what makes ChASE(STD)'s weak-scaling curve climb from
    5.1 s to 16 s while ChASE(NCCL) stays nearly flat (paper Fig. 3a).
    """

    #: host-staged MPI progresses mainly inside MPI calls (no async
    #: progress thread): only ~1/3 of a nonblocking collective hides
    overlap_efficiency: float = 0.35

    #: bandwidth degradation per doubling of the communicator
    congestion: float = 0.55

    def _link(self, spans_nodes: bool) -> LinkSpec:
        # Intra-node traffic uses MPI's shared-memory transport (faster
        # than IB, far slower than NVLink since it crosses host memory).
        return self.machine.ib_mpi if spans_nodes else self.machine.shm_mpi

    def _bw(self, p: int, link: LinkSpec) -> float:
        return link.bandwidth / (
            1.0 + self.congestion * max(0.0, math.log2(p) - 1.0)
        )

    def _call_overhead(self) -> float:
        return self.machine.mpi_call_overhead

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool, *,
                  link: LinkSpec | None = None) -> float:
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        bw = self._bw(p, link)
        rounds = math.ceil(math.log2(p))
        t = 2 * rounds * link.latency + 2 * nbytes * (p - 1) / p / bw
        if not _is_pow2(p):
            # extra pre/post round to shrink to the nearest power of two
            t += 2 * link.latency + nbytes / bw
        return self._call_overhead() + t

    def bcast(self, nbytes: float, p: int, spans_nodes: bool, *,
              link: LinkSpec | None = None) -> float:
        # broadcast trees move each byte once per hop and do not suffer
        # the allreduce's host-side reduction staging: no congestion term
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        bw = link.bandwidth
        rounds = math.ceil(math.log2(p))
        if nbytes <= _EAGER_LIMIT:
            t = rounds * (link.latency + nbytes / bw)
        else:
            # scatter + ring allgather
            t = (
                rounds * link.latency
                + nbytes * (p - 1) / p / bw  # scatter
                + (p - 1) * link.latency
                + nbytes * (p - 1) / p / bw  # allgather
            )
        return self._call_overhead() + t


@dataclass(frozen=True)
class NcclModel(CollectiveModel):
    """Device-side NCCL collectives over NVLink / GPUDirect InfiniBand."""

    def _link(self, spans_nodes: bool) -> LinkSpec:
        return self.machine.ib_nccl if spans_nodes else self.machine.nvlink

    def _call_overhead(self) -> float:
        return self.machine.nccl_call_overhead

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool, *,
                  link: LinkSpec | None = None) -> float:
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        steps = 2 * (p - 1)
        t = steps * link.latency + 2 * nbytes * (p - 1) / p / link.bandwidth
        return self._call_overhead() + t

    def bcast(self, nbytes: float, p: int, spans_nodes: bool, *,
              link: LinkSpec | None = None) -> float:
        if p <= 1:
            return self._call_overhead()
        if link is None:
            link = self._link(spans_nodes)
        # pipelined ring broadcast: latency of p-1 hops, bandwidth-bound body
        t = (p - 1) * link.latency + nbytes / link.bandwidth
        return self._call_overhead() + t


# ---------------------------------------------------------------------------
# algorithm routing
# ---------------------------------------------------------------------------

#: legacy per-op modeled message counts (what CommStats.messages records)
_LEVEL_MESSAGES = {
    "allreduce": lambda k: 2 * _log2ceil(k),
    "bcast": lambda k: _log2ceil(k),
    "allgather": lambda k: max(k - 1, 0),
}


def _level_split(op: str, nbytes: float, p: int,
                 topo: CommTopology, hierarchical: bool
                 ) -> tuple[int, int, float, float]:
    """(intra_msgs, inter_msgs, intra_bytes, inter_bytes) of one call.

    Bytes split the legacy ``nbytes * p`` attribution by the deepest
    level each participant's payload crosses (leaders -> inter), so the
    two counters always sum to the legacy total.
    """
    msgs = _LEVEL_MESSAGES[op]
    if not topo.spans_nodes:
        return msgs(p), 0, nbytes * p, 0.0
    if not hierarchical:
        return 0, msgs(p), 0.0, nbytes * p
    n_leaders = topo.n_nodes
    intra_msgs = sum(msgs(s) for s in topo.local_sizes if s > 1)
    return (
        intra_msgs,
        msgs(n_leaders),
        nbytes * (len(topo.nodes) - n_leaders),
        nbytes * n_leaders,
    )


def _flat_time(model: CollectiveModel, op: str, nbytes: float, p: int,
               topo: CommTopology, algo: CollectiveAlgo) -> float:
    """Single-level cost with hop-aware link selection."""
    link = model.link_for(topo)
    spans = topo.spans_nodes
    # bit-identity fast path: link_for returns the seed link object when
    # no tree is attached (or no deep crossing), and passing link=None
    # makes each model pick exactly that link internally
    if link is model._link(spans):
        link = None
    if op == "allreduce":
        if algo is CollectiveAlgo.TREE:
            return model.tree_allreduce(nbytes, p, spans, link=link)
        return model.allreduce(nbytes, p, spans, link=link)
    if op == "bcast":
        if algo is CollectiveAlgo.TREE:
            return model.tree_bcast(nbytes, p, spans, link=link)
        return model.bcast(nbytes, p, spans, link=link)
    if op == "allgather":
        # no tree variant of allgather: every block must travel anyway
        return model.allgather(nbytes, p, spans, link=link)
    raise KeyError(f"unknown collective op {op!r}")


def _hierarchical_time(model: CollectiveModel, op: str, nbytes: float,
                       p: int, topo: CommTopology) -> float:
    """Two-level cost: intra-node phase(s) + inter-node leader phase.

    The intra phases run concurrently across nodes, so the critical path
    charges the *largest* node group; the leader phase pays the
    hop-aware inter-node link.  On a single node this degrades to the
    flat cost exactly (callers guarantee ``topo.spans_nodes``).
    """
    m = topo.max_local          # largest on-node group (critical path)
    n_leaders = topo.n_nodes
    inter = model.link_for(topo)
    if op == "allreduce":
        t = model.allreduce(nbytes, n_leaders, True, link=inter)
        if m > 1:
            t += model.reduce(nbytes, m, False)
            t += model.bcast(nbytes, m, False)
        return t
    if op == "bcast":
        t = model.bcast(nbytes, n_leaders, True, link=inter)
        if m > 1:
            t += model.bcast(nbytes, m, False)
        return t
    if op == "allgather":
        # gather node-local blocks, allgather the node aggregates among
        # leaders, then push the foreign blocks down inside each node
        t = model.allgather(nbytes * m, n_leaders, True, link=inter)
        if m > 1:
            t += model.allgather(nbytes, m, False)
            t += model.bcast(nbytes * (p - m), m, False)
        return t
    raise KeyError(f"unknown collective op {op!r}")


def collective_cost(model: CollectiveModel, op: str, nbytes: float, p: int,
                    topo: CommTopology | None = None,
                    algo: CollectiveAlgo | str | None = None,
                    ) -> CollectiveCharge:
    """Cost one collective under the selected algorithm and topology.

    ``op`` is ``allreduce`` / ``bcast`` / ``allgather``; ``topo`` may be
    ``None`` (single-level boolean view, as the seed model) and ``algo``
    defaults to :attr:`CollectiveAlgo.RING` — with both at their
    defaults the returned time is bit-identical to
    ``model.<op>(nbytes, p, topo.spans_nodes)``.
    """
    algo = CollectiveAlgo.parse(algo)
    if topo is None:
        topo = CommTopology([0] * p)
    hier_eligible = topo.spans_nodes
    if algo is CollectiveAlgo.HIERARCHICAL and hier_eligible:
        time = _hierarchical_time(model, op, nbytes, p, topo)
        hierarchical = True
    elif algo is CollectiveAlgo.AUTO:
        flat = _flat_time(model, op, nbytes, p, topo, CollectiveAlgo.RING)
        tree = _flat_time(model, op, nbytes, p, topo, CollectiveAlgo.TREE)
        time, hierarchical = min(flat, tree), False
        if hier_eligible:
            hier = _hierarchical_time(model, op, nbytes, p, topo)
            if hier < time:
                time, hierarchical = hier, True
    else:
        # RING, TREE, or HIERARCHICAL degraded to flat on a single node
        flat_algo = algo if algo is CollectiveAlgo.TREE else CollectiveAlgo.RING
        time = _flat_time(model, op, nbytes, p, topo, flat_algo)
        hierarchical = False
    intra_m, inter_m, intra_b, inter_b = _level_split(
        op, nbytes, p, topo, hierarchical
    )
    return CollectiveCharge(
        time=time,
        intra_messages=intra_m,
        inter_messages=inter_m,
        intra_bytes=intra_b,
        inter_bytes=inter_b,
    )
