"""Latency/bandwidth models for MPI and NCCL collective operations.

The models are the standard alpha-beta cost expressions:

* **MPI allreduce** — recursive halving/doubling (Rabenseifner):
  ``2 ceil(log2 p) alpha + 2 n beta (p-1)/p``; when ``p`` is not a power
  of two an extra preparation/return round is charged, which produces
  the dips at 4/16/64/256 nodes the paper observes for ChASE(STD) in
  Fig. 3a.
* **MPI broadcast** — binomial tree for short messages,
  scatter + allgather (van de Geijn) for long ones.
* **NCCL allreduce/broadcast** — pipelined ring: ``2 (p-1) alpha +
  2 n beta (p-1)/p`` (allreduce), ``(p-1) alpha + n beta`` (broadcast),
  with the ring bandwidth set by the slowest link it crosses (NVLink if
  the communicator lives in one node, GPUDirect-IB otherwise).

All methods return modeled seconds for one collective over ``p`` ranks
moving ``nbytes`` per rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.machine import LinkSpec, MachineSpec

__all__ = ["CollectiveModel", "MpiModel", "NcclModel"]

_EAGER_LIMIT = 64 * 1024  # bytes; binomial bcast below, pipelined above


def _is_pow2(p: int) -> bool:
    return p > 0 and (p & (p - 1)) == 0


@dataclass(frozen=True)
class CollectiveModel:
    """Base class; concrete models pick links and algorithms.

    ``overlap_efficiency`` models how well a *nonblocking* collective
    progresses while the issuing rank computes (the fraction of wall
    time between issue and ``wait()`` during which the transfer makes
    progress).  Device-resident NCCL collectives run on dedicated
    copy/SM resources and overlap almost perfectly (1.0); host-staged
    MPI without a progress thread mostly advances inside MPI calls, so
    its default is far lower.  The knob only affects the clock
    accounting of ``Communicator.iallreduce``/``ibcast`` — blocking
    collectives and all byte/message counters are untouched.
    """

    machine: MachineSpec
    #: fraction of a nonblocking collective that can hide behind compute
    overlap_efficiency: float = 1.0

    def _link(self, spans_nodes: bool) -> LinkSpec:
        raise NotImplementedError

    def _call_overhead(self) -> float:
        raise NotImplementedError

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        raise NotImplementedError

    def bcast(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        raise NotImplementedError

    def allgather(self, nbytes_per_rank: float, p: int, spans_nodes: bool) -> float:
        """Ring allgather of p blocks of nbytes_per_rank each."""
        if p <= 1:
            return self._call_overhead()
        link = self._link(spans_nodes)
        steps = p - 1
        return (
            self._call_overhead()
            + steps * link.latency
            + steps * nbytes_per_rank / link.bandwidth
        )

    def reduce(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        # binomial-tree reduce; same leading cost as bcast
        return self.bcast(nbytes, p, spans_nodes)


@dataclass(frozen=True)
class MpiModel(CollectiveModel):
    """Host-side MPI collectives (Open MPI defaults).

    Besides the alpha-beta terms, large-message MPI collectives lose
    effective bandwidth as the communicator grows (host-memory staging of
    intermediate buffers, switch contention, no GPUDirect): modeled as

        bw_eff(p) = bw / (1 + kappa * max(0, log2(p) - 1))

    This degradation — absent from the NCCL ring, which keeps the wire
    saturated — is what makes ChASE(STD)'s weak-scaling curve climb from
    5.1 s to 16 s while ChASE(NCCL) stays nearly flat (paper Fig. 3a).
    """

    #: host-staged MPI progresses mainly inside MPI calls (no async
    #: progress thread): only ~1/3 of a nonblocking collective hides
    overlap_efficiency: float = 0.35

    #: bandwidth degradation per doubling of the communicator
    congestion: float = 0.55

    def _link(self, spans_nodes: bool) -> LinkSpec:
        # Intra-node traffic uses MPI's shared-memory transport (faster
        # than IB, far slower than NVLink since it crosses host memory).
        return self.machine.ib_mpi if spans_nodes else self.machine.shm_mpi

    def _bw(self, p: int, spans_nodes: bool) -> float:
        bw = self._link(spans_nodes).bandwidth
        return bw / (1.0 + self.congestion * max(0.0, math.log2(p) - 1.0))

    def _call_overhead(self) -> float:
        return self.machine.mpi_call_overhead

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        if p <= 1:
            return self._call_overhead()
        link = self._link(spans_nodes)
        bw = self._bw(p, spans_nodes)
        rounds = math.ceil(math.log2(p))
        t = 2 * rounds * link.latency + 2 * nbytes * (p - 1) / p / bw
        if not _is_pow2(p):
            # extra pre/post round to shrink to the nearest power of two
            t += 2 * link.latency + nbytes / bw
        return self._call_overhead() + t

    def bcast(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        # broadcast trees move each byte once per hop and do not suffer
        # the allreduce's host-side reduction staging: no congestion term
        if p <= 1:
            return self._call_overhead()
        link = self._link(spans_nodes)
        bw = link.bandwidth
        rounds = math.ceil(math.log2(p))
        if nbytes <= _EAGER_LIMIT:
            t = rounds * (link.latency + nbytes / bw)
        else:
            # scatter + ring allgather
            t = (
                rounds * link.latency
                + nbytes * (p - 1) / p / bw  # scatter
                + (p - 1) * link.latency
                + nbytes * (p - 1) / p / bw  # allgather
            )
        return self._call_overhead() + t


@dataclass(frozen=True)
class NcclModel(CollectiveModel):
    """Device-side NCCL collectives over NVLink / GPUDirect InfiniBand."""

    def _link(self, spans_nodes: bool) -> LinkSpec:
        return self.machine.ib_nccl if spans_nodes else self.machine.nvlink

    def _call_overhead(self) -> float:
        return self.machine.nccl_call_overhead

    def allreduce(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        if p <= 1:
            return self._call_overhead()
        link = self._link(spans_nodes)
        steps = 2 * (p - 1)
        t = steps * link.latency + 2 * nbytes * (p - 1) / p / link.bandwidth
        return self._call_overhead() + t

    def bcast(self, nbytes: float, p: int, spans_nodes: bool) -> float:
        if p <= 1:
            return self._call_overhead()
        link = self._link(spans_nodes)
        # pipelined ring broadcast: latency of p-1 hops, bandwidth-bound body
        t = (p - 1) * link.latency + nbytes / link.bandwidth
        return self._call_overhead() + t
