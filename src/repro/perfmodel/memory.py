"""Per-rank memory-footprint models (paper Eq. (2) and the v1.2 layout).

The new parallelization scheme stores, per MPI rank (Eq. (2)):

    M_new = N^2/(p q) + 2 N ne / p + 2 N ne / q + ne^2   (elements)

while ChASE v1.2 ("LMS") keeps two *redundant* ``N x ne`` buffers per
rank (the gathered vector block and the gathered ``H C`` block) plus a
comparable cuSOLVER QR workspace, in addition to its share of ``H``:

    M_lms = N^2 / (nodes * gpus) + 3 N ne + ne^2         (elements)

On JUWELS-Booster the LMS build runs 1 rank per node with the local
``H`` block split across the node's 4 GPUs, but the redundant buffers
must fit on *one* device for the (redundant) QR — this is exactly why
the paper's LMS weak-scaling series stops at 144 nodes: at N = 360k,
ne = 3000 (real double) the redundant buffers total ~25.9 GB of the
A100's 40 GB and still fit; the next square point (256 nodes,
N = 480k) needs ~34.6 GB + the H share, beyond the usable capacity
once CUDA context and allocator overheads are accounted for.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.kernels import elem_bytes

__all__ = ["chase_new_scheme_bytes", "chase_lms_bytes", "fits_on_device"]


def _work_elem_bytes(work_dtype, dtype) -> float | None:
    """Per-element bytes of the narrow working set, or None when the
    working precision adds no separate footprint.

    ``work_dtype`` is either an NumPy dtype (fp32 mixed precision) or a
    half-tier token string (``"fp16"``/``"bf16"``, DESIGN.md §5j) whose
    modeled words are 2 bytes — 4 for the complex pairs — even though
    the emulation stores them in fp32.
    """
    if work_dtype is None:
        return None
    if isinstance(work_dtype, str):
        return elem_bytes(work_dtype, like=dtype)
    if np.dtype(work_dtype) == np.dtype(dtype):
        return None
    return float(np.dtype(work_dtype).itemsize)


def chase_new_scheme_bytes(
    N: int, ne: int, p: int, q: int, dtype=np.float64, work_dtype=None
) -> int:
    """Eq. (2): peak per-rank bytes of the new parallelization scheme.

    ``work_dtype`` (mixed precision, DESIGN.md §5g): a filter working
    dtype narrower than ``dtype`` adds the narrow working set kept
    alive alongside the fp64 state — the cached narrow ``H`` block, the
    demoted input block plus its C-layout ping-pong pair, and the
    B-layout ping-pong pair.  Word widths come from the dtypes, never
    from hard-coded 8/16-byte constants.
    """
    if p <= 0 or q <= 0:
        raise ValueError("grid dimensions must be positive")
    itemsize = np.dtype(dtype).itemsize
    elems = (N * N) / (p * q) + 2 * N * ne / p + 2 * N * ne / q + ne * ne
    total = elems * itemsize
    wsize = _work_elem_bytes(work_dtype, dtype)
    if wsize is not None:
        welems = (N * N) / (p * q) + 3 * N * ne / p + 2 * N * ne / q
        total += welems * wsize
    return int(np.ceil(total))


def chase_lms_bytes(
    N: int, ne: int, nodes: int, gpus_per_node: int = 4, dtype=np.float64,
    work_dtype=None,
) -> int:
    """Per-GPU bytes of the v1.2 (LMS) layout.

    ``H`` is split across the node's GPUs, but the redundant ``N x ne``
    work buffers (gathered vectors, gathered ``H C``) and the QR
    workspace are replicated on each device.  ``work_dtype`` adds the
    mixed-precision filter's narrow ``H`` cache and work buffers (the
    LMS filter runs the same distributed HEMM as the new scheme).
    """
    if nodes <= 0 or gpus_per_node <= 0:
        raise ValueError("node/GPU counts must be positive")
    itemsize = np.dtype(dtype).itemsize
    elems = (N * N) / (nodes * gpus_per_node) + 3 * N * ne + ne * ne
    total = elems * itemsize
    wsize = _work_elem_bytes(work_dtype, dtype)
    if wsize is not None:
        welems = (N * N) / (nodes * gpus_per_node) + 2 * N * ne
        total += welems * wsize
    return int(np.ceil(total))


def fits_on_device(required_bytes: int, device_bytes: int, headroom: float = 0.8) -> bool:
    """True when the footprint fits within ``headroom`` of device memory.

    The default 20% headroom accounts for the CUDA context, cuSOLVER
    scratch allocations and allocator fragmentation that the closed-form
    model does not track.
    """
    if not 0 < headroom <= 1:
        raise ValueError("headroom must be in (0, 1]")
    return required_bytes <= device_bytes * headroom
