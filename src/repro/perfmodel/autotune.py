"""Model-driven configuration autotuner (``repro tune``).

After PRs 1-3 a distributed solve has a five-dimensional configuration
space: the grid shape (``p x q`` factorization of the rank count), the
collective algorithm (:class:`~repro.perfmodel.collectives.CollectiveAlgo`),
the pipelined filter's chunk count, the HEMM fusion tier, and the
nonblocking overlap efficiency.  Hutter & Solomonik (PAPERS.md) make the
case that the winning configuration depends on topology and problem
shape, so it must be *selected*, not hard-coded — this module does the
selection with the performance model alone:

1. :func:`enumerate_candidates` spans the config space (every ``p x q``
   factorization x algorithm x chunk count x fusion x overlap);
2. :func:`autotune` scores each candidate with a cheap **model-only dry
   run** — a phantom replay of a fixed convergence trace, no numerics —
   and returns the candidates ranked by modeled solve makespan;
3. :func:`applied` builds a real cluster/grid configured per the winner
   (used by ``repro solve --tuned`` and the benchmarks).

The untuned default (:func:`default_config`: squarest grid, ``ring``
collectives, blocking filter, fusion off) is always in the candidate
set, so the winner's modeled makespan is never worse than the default's.

HEMM fusion is *modeled-time neutral* (DESIGN.md §5c: the fused tier is
charge-identical); it is enumerated so the ranked table shows that
explicitly, scored from a shared dry run, and broken in favour of
``fusion=on`` (host wall-clock win at equal modeled time).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass

import numpy as np

from repro.perfmodel.collectives import CollectiveAlgo
from repro.perfmodel.machine import MachineSpec, juwels_booster
from repro.perfmodel.topology import FatTree

__all__ = [
    "TuneConfig",
    "TuneResult",
    "TuneReport",
    "DEFAULT_PRECISION_OPTIONS",
    "grid_factorizations",
    "default_config",
    "enumerate_candidates",
    "autotune",
    "applied",
]

#: chunk counts tried for the pipelined filter (0 = blocking)
DEFAULT_CHUNKS = (0, 4)
#: collective algorithms tried
DEFAULT_ALGOS = ("ring", "tree", "hierarchical", "auto")
#: ``(filter_dtype, comm_compress[, qr_dtype])`` tuples spanning the
#: precision ladder (DESIGN.md §5j).  :func:`autotune` folds these into
#: its default candidate set, so ``repro solve --tuned`` searches the
#: precision cascade out of the box; ties always break toward fp64
#: (and the fp64 default config is always a candidate), so a tuned run
#: never models slower — or less precise at equal time — than the seed.
DEFAULT_PRECISION_OPTIONS = (
    ("fp64", "none", "fp64"),
    ("fp32", "none", "fp64"),
    ("fp32", "fp32", "auto"),
    ("bf16", "bf16", "auto"),
    ("fp16", "fp16", "auto"),
)

#: tie-break orderings: lower index = preferred (wider / less lossy)
_DTYPE_ORDER = {"fp64": 0, "fp32": 1, "bf16": 2, "fp16": 3, "auto": 4}
_PAYLOAD_ORDER = {"none": 0, "fp32": 1, "bf16": 2, "fp16": 3}
_QR_ORDER = {"fp64": 0, "auto": 1, "fp32": 2, "bf16": 3, "fp16": 4}


@dataclass(frozen=True)
class TuneConfig:
    """One point of the configuration space."""

    p: int
    q: int
    algo: str = "ring"           # CollectiveAlgo value
    pipeline_chunks: int = 0     # 0 = blocking filter
    hemm_fusion: bool = False
    overlap: float | None = None # None = backend model's default
    filter_dtype: str = "fp64"   # precision-cascade filter (DESIGN.md §5j)
    comm_compress: str = "none"  # compressed allreduce payload dtype
    qr_dtype: str = "fp64"       # mixed CholeskyQR2 first-pass precision

    def label(self) -> str:
        bits = [f"{self.p}x{self.q}", self.algo,
                f"chunks={self.pipeline_chunks or 'off'}",
                f"fusion={'on' if self.hemm_fusion else 'off'}"]
        if self.overlap is not None:
            bits.append(f"overlap={self.overlap:g}")
        if self.filter_dtype != "fp64":
            bits.append(f"filter={self.filter_dtype}")
        if self.comm_compress != "none":
            bits.append(f"compress={self.comm_compress}")
        if self.qr_dtype != "fp64":
            bits.append(f"qr={self.qr_dtype}")
        return " ".join(bits)

    def _score_key(self) -> tuple:
        """Model-relevant projection (fusion is modeled-time neutral)."""
        return (self.p, self.q, self.algo, self.pipeline_chunks,
                self.overlap, self.filter_dtype, self.comm_compress,
                self.qr_dtype)


@dataclass(frozen=True)
class TuneResult:
    """One scored candidate."""

    config: TuneConfig
    makespan: float              # modeled seconds (inf when infeasible)
    filter_time: float = 0.0
    qr_time: float = 0.0
    comm_time: float = 0.0
    is_default: bool = False
    error: str | None = None

    @property
    def feasible(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class TuneReport:
    """Ranked results plus the default/best summary the CLI prints."""

    results: tuple[TuneResult, ...]   # ranked, best first
    default: TuneResult
    best: TuneResult

    @property
    def speedup(self) -> float:
        """Modeled makespan ratio default/best (>= 1.0 by construction)."""
        if not (self.best.feasible and self.default.feasible):
            return 1.0
        return self.default.makespan / self.best.makespan


def grid_factorizations(n_ranks: int) -> list[tuple[int, int]]:
    """Every ``p x q = n_ranks`` factorization, squarest first."""
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    pairs = []
    for p in range(1, n_ranks + 1):
        if n_ranks % p == 0:
            pairs.append((p, n_ranks // p))
    pairs.sort(key=lambda pq: (abs(pq[0] - pq[1]), pq[0]))
    return pairs


def default_config(n_ranks: int) -> TuneConfig:
    """The untuned seed configuration: squarest grid, flat ring
    collectives, blocking filter, fusion off, model-default overlap."""
    from repro.runtime.grid import squarest_grid

    p, q = squarest_grid(n_ranks)
    return TuneConfig(p=p, q=q)


def enumerate_candidates(
    n_ranks: int,
    algos: tuple[str, ...] = DEFAULT_ALGOS,
    chunk_options: tuple[int, ...] = DEFAULT_CHUNKS,
    fusion_options: tuple[bool, ...] = (False, True),
    overlaps: tuple[float | None, ...] = (None,),
    precision_options: tuple[tuple, ...] = (("fp64", "none"),),
) -> list[TuneConfig]:
    """The candidate grid; always contains :func:`default_config`.

    ``precision_options`` lists ``(filter_dtype, comm_compress)`` pairs
    or ``(filter_dtype, comm_compress, qr_dtype)`` triples (the omitted
    QR precision defaults to fp64); the parameter's own default
    enumerates fp64-only — :func:`autotune` opts its default candidate
    set into :data:`DEFAULT_PRECISION_OPTIONS`.
    """
    cands = []
    for p, q in grid_factorizations(n_ranks):
        for algo in algos:
            CollectiveAlgo.parse(algo)  # validate early
            for chunks in chunk_options:
                if chunks != 0 and chunks < 2:
                    raise ValueError(f"pipeline chunk counts must be 0 or >= 2, got {chunks}")
                for fusion in fusion_options:
                    for overlap in overlaps:
                        for opt in precision_options:
                            fdt, comp, *rest = opt
                            qdt = rest[0] if rest else "fp64"
                            cands.append(TuneConfig(
                                p=p, q=q, algo=algo, pipeline_chunks=chunks,
                                hemm_fusion=fusion, overlap=overlap,
                                filter_dtype=fdt, comm_compress=comp,
                                qr_dtype=qdt,
                            ))
    default = default_config(n_ranks)
    if default not in cands:
        cands.insert(0, default)
    return cands


def _resolve_nodes(n_ranks: int, machine: MachineSpec,
                   ranks_per_node: int | None) -> tuple[int, int]:
    rpn = ranks_per_node if ranks_per_node is not None \
        else max(machine.gpus_per_node, 1)
    return rpn, math.ceil(n_ranks / rpn)


def _build_cluster(cfg: TuneConfig, *, n_ranks, backend, machine,
                   ranks_per_node, nodes_per_leaf, use_topology, phantom,
                   transport=None):
    from repro.runtime import Grid2D, VirtualCluster

    machine = machine if machine is not None else juwels_booster()
    rpn, n_nodes = _resolve_nodes(n_ranks, machine, ranks_per_node)
    tree = FatTree(n_nodes, nodes_per_leaf=nodes_per_leaf) \
        if (use_topology and n_nodes > 1) else None
    cluster = VirtualCluster(
        n_ranks, machine=machine, backend=backend, ranks_per_node=rpn,
        phantom=phantom, topology=tree, collective_algo=cfg.algo,
        transport=transport,
    )
    grid = Grid2D(cluster, cfg.p, cfg.q)
    if cfg.overlap is not None:
        grid.set_overlap_efficiency(cfg.overlap)
    return grid


@contextlib.contextmanager
def applied(cfg: TuneConfig, *, n_ranks: int, backend,
            machine: MachineSpec | None = None,
            ranks_per_node: int | None = None,
            nodes_per_leaf: int = 8,
            use_topology: bool = True,
            phantom: bool = False,
            transport=None):
    """A cluster/grid configured per ``cfg``, with the global execution
    toggles (filter pipeline, HEMM fusion) scoped to the ``with`` body.

    Yields the :class:`~repro.runtime.grid.Grid2D`; ``repro solve
    --tuned`` and the wallclock benchmark solve inside this scope.
    ``transport`` selects the execution backend for the data plane
    (DESIGN.md §5h); its resources (rank threads/processes, shm) are
    released when the scope exits.
    """
    from repro.distributed import filter_pipeline
    from repro.distributed.replication import (
        comm_compress_scope,
        filter_dtype_scope,
        hemm_fusion,
        qr_dtype_scope,
    )

    grid = _build_cluster(
        cfg, n_ranks=n_ranks, backend=backend, machine=machine,
        ranks_per_node=ranks_per_node, nodes_per_leaf=nodes_per_leaf,
        use_topology=use_topology, phantom=phantom, transport=transport,
    )
    try:
        with filter_pipeline(cfg.pipeline_chunks > 0,
                             cfg.pipeline_chunks or None), \
                hemm_fusion(cfg.hemm_fusion), \
                filter_dtype_scope(cfg.filter_dtype), \
                comm_compress_scope(cfg.comm_compress), \
                qr_dtype_scope(cfg.qr_dtype):
            yield grid
    finally:
        grid.cluster.close()


def _dry_run(cfg: TuneConfig, *, n_ranks, N, nev, nex, backend, machine,
             ranks_per_node, nodes_per_leaf, use_topology, iterations,
             deg, dtype) -> tuple[float, float, float, float]:
    """Model-only phantom replay; returns (makespan, filter, qr, comm)."""
    from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
    from repro.core.lanczos import SpectralBounds
    from repro.distributed import DistributedHermitian

    trace = ConvergenceTrace.fixed(iterations, nev + nex, deg=deg)
    if cfg.qr_dtype != "fp64":
        # the fixed trace records cond_est = 1.0, which the doubling
        # gate admits — replay the recorded CholeskyQR2 iterations
        # through the mixed first pass so the candidate's QR-phase
        # advantage is scored by the same code path a solve charges
        from repro.core.qr import qr_work_precision

        qwork = qr_work_precision(np.dtype(dtype), cfg.qr_dtype, 1.0)
        if qwork is not None:
            for rec in trace.records:
                if rec.qr_variant == "CholeskyQR2":
                    rec.qr_variant = f"mCholeskyQR2[{qwork.token}]"

    # dry runs are model-only: pin the orchestrated transport so a
    # REPRO_BACKEND=mp environment never spawns workers for phantoms
    with applied(cfg, n_ranks=n_ranks, backend=backend, machine=machine,
                 ranks_per_node=ranks_per_node, nodes_per_leaf=nodes_per_leaf,
                 use_topology=use_topology, phantom=True,
                 transport="orchestrated") as grid:
        Hd = DistributedHermitian.phantom(grid, N, np.dtype(dtype))
        solver = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex, deg=deg))
        res = solver.solve_phantom(
            trace,
            bounds=SpectralBounds(3.0, -1.0, 1.0),
        )
    filt = res.timings.get("Filter")
    qr = res.timings.get("QR")
    comm = sum(b.comm for b in res.timings.values())
    return (res.makespan, filt.total if filt else 0.0,
            qr.total if qr else 0.0, comm)


def autotune(
    n_ranks: int,
    N: int,
    nev: int,
    nex: int,
    *,
    backend=None,
    machine: MachineSpec | None = None,
    ranks_per_node: int | None = None,
    nodes_per_leaf: int = 8,
    use_topology: bool = True,
    iterations: int = 2,
    deg: int = 20,
    dtype=np.float64,
    candidates: list[TuneConfig] | None = None,
) -> TuneReport:
    """Score every candidate with a model-only dry run; rank by makespan.

    Ties are broken toward fusion-on (host-wall faster at equal modeled
    time), then fewer pipeline chunks, then the default algorithm —
    so the ranking is deterministic and never prefers an exotic
    configuration without a modeled reason.
    """
    from repro.runtime import CommBackend

    backend = backend if backend is not None else CommBackend.NCCL
    cands = candidates if candidates is not None \
        else enumerate_candidates(
            n_ranks, precision_options=DEFAULT_PRECISION_OPTIONS
        )
    default = default_config(n_ranks)
    if default not in cands:
        cands = [default, *cands]

    cache: dict[tuple, tuple] = {}
    results = []
    for cfg in cands:
        key = cfg._score_key()
        if key not in cache:
            try:
                cache[key] = _dry_run(
                    cfg, n_ranks=n_ranks, N=N, nev=nev, nex=nex,
                    backend=backend, machine=machine,
                    ranks_per_node=ranks_per_node,
                    nodes_per_leaf=nodes_per_leaf,
                    use_topology=use_topology, iterations=iterations,
                    deg=deg, dtype=dtype,
                )
            except MemoryError as exc:
                cache[key] = (float("inf"), 0.0, 0.0, 0.0, str(exc))
        entry = cache[key]
        error = entry[4] if len(entry) > 4 else None
        results.append(TuneResult(
            config=cfg, makespan=entry[0], filter_time=entry[1],
            qr_time=entry[2], comm_time=entry[3],
            is_default=(cfg == default), error=error,
        ))

    algo_order = {a: i for i, a in enumerate(DEFAULT_ALGOS)}
    results.sort(key=lambda r: (
        r.makespan,
        not r.config.hemm_fusion,
        # at equal modeled time prefer the widest precision / least
        # lossy wire: fp64 before fp32 before the half tiers
        _DTYPE_ORDER.get(r.config.filter_dtype, len(_DTYPE_ORDER)),
        _PAYLOAD_ORDER.get(r.config.comm_compress, len(_PAYLOAD_ORDER)),
        _QR_ORDER.get(r.config.qr_dtype, len(_QR_ORDER)),
        r.config.pipeline_chunks,
        algo_order.get(r.config.algo, len(algo_order)),
        abs(r.config.p - r.config.q),
        r.config.p,
    ))
    default_res = next(r for r in results if r.is_default)
    best = results[0]
    if not best.feasible:
        raise MemoryError(
            f"no feasible configuration for N={N}, ne={nev + nex} "
            f"on {n_ranks} ranks"
        )
    return TuneReport(results=tuple(results), default=default_res, best=best)


def tuned_variant(report: TuneReport) -> TuneConfig:
    """The winner, normalized for application: identical modeled time
    configs prefer fusion-on, which :func:`autotune` already ordered —
    this simply returns ``report.best.config`` (kept as an explicit
    seam for future policies)."""
    return report.best.config
