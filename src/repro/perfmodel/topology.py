"""Interconnect topology analysis (fat trees).

The collective models in :mod:`repro.perfmodel.collectives` distinguish
only intra- vs inter-node traffic.  Real clusters route inter-node
messages through a switch hierarchy — JUWELS-Booster uses a DragonFly+
topology, many systems use k-ary fat trees — and a communicator's cost
depends on how deep into the tree its traffic must climb.

This module builds a two-level fat tree as a :mod:`networkx` graph and
answers the questions a placement study needs:

* how many switch hops separate two nodes;
* a communicator's average/maximum hop count;
* how much of a communicator's pairwise traffic crosses the root level
  (the oversubscription exposure).

`bench_ablation_placement.py` uses it to quantify *why* one placement
beats another beyond the intra/inter-node split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

__all__ = ["FatTree"]


@dataclass(frozen=True)
class FatTree:
    """A two-level fat tree: leaf switches x nodes per leaf.

    Nodes ``0..n_nodes-1`` hang off leaf switches of radix
    ``nodes_per_leaf``; all leaf switches connect to a single core
    level.  Hop counts: same node 0, same leaf 2 (up+down), across
    leaves 4 (up, core, down).
    """

    n_nodes: int
    nodes_per_leaf: int = 8

    def __post_init__(self) -> None:
        if self.n_nodes < 1 or self.nodes_per_leaf < 1:
            raise ValueError("need positive node/leaf sizes")

    # -- structure ----------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        return math.ceil(self.n_nodes / self.nodes_per_leaf)

    def leaf_of(self, node: int) -> int:
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range")
        return node // self.nodes_per_leaf

    def graph(self) -> nx.Graph:
        """The topology as an explicit graph (for analysis/plotting)."""
        g = nx.Graph()
        core = "core"
        g.add_node(core, kind="core")
        for leaf in range(self.n_leaves):
            ls = f"leaf{leaf}"
            g.add_node(ls, kind="leaf")
            g.add_edge(core, ls)
        for node in range(self.n_nodes):
            g.add_node(node, kind="node")
            g.add_edge(node, f"leaf{self.leaf_of(node)}")
        return g

    # -- queries -------------------------------------------------------------
    def hops(self, a: int, b: int) -> int:
        """Switch hops between two nodes (0 if equal, 2 same leaf, 4 else)."""
        if a == b:
            return 0
        return 2 if self.leaf_of(a) == self.leaf_of(b) else 4

    def hops_via_graph(self, a: int, b: int) -> int:
        """Same as :meth:`hops` but computed on the explicit graph
        (cross-checks the closed form; used by tests)."""
        if a == b:
            return 0
        return nx.shortest_path_length(self.graph(), a, b)

    def comm_profile(self, nodes: list[int]) -> dict[str, float]:
        """Pairwise hop statistics of a communicator's node set.

        Returns mean/max hops and the fraction of pairs crossing the
        core level (the oversubscription exposure of its collectives).
        """
        uniq = sorted(set(nodes))
        if len(uniq) <= 1:
            return {"mean_hops": 0.0, "max_hops": 0, "core_fraction": 0.0}
        pairs = [
            (a, b) for i, a in enumerate(uniq) for b in uniq[i + 1 :]
        ]
        hop_list = [self.hops(a, b) for a, b in pairs]
        return {
            "mean_hops": float(sum(hop_list) / len(hop_list)),
            "max_hops": int(max(hop_list)),
            "core_fraction": float(
                sum(h == 4 for h in hop_list) / len(hop_list)
            ),
        }
