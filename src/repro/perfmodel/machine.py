"""Machine descriptions used by the performance model.

The reference target is JUWELS-Booster (the paper's testbed): 936 nodes,
each with 2x AMD EPYC 7402 (48 cores) and 4x NVIDIA A100-40GB, connected
by 4x InfiniBand HDR200 adapters (one per GPU).  Constants below are
effective (achievable) rates, not peaks, calibrated so that the modeled
single-node, single-iteration ChASE time matches the paper's Fig. 3a
anchor point (~2.3 s for N=30k, ne=3000, deg=20 with ChASE(NCCL)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DeviceSpec", "LinkSpec", "MachineSpec", "juwels_booster", "lumi_g", "laptop_cpu"]


@dataclass(frozen=True)
class DeviceSpec:
    """Effective execution rates of one compute device (GPU or CPU socket share).

    Rates are in FLOP/s of *double precision real* arithmetic; complex
    kernels account for their higher flop count in the kernel model, not
    here.  ``eff_half_flops`` parameterizes the small-problem efficiency
    ramp: a kernel of ``f`` flops runs at ``rate * f / (f + eff_half_flops)``.

    ``rate_table`` holds the calibrated throughput multipliers of the
    narrow precisions relative to the fp64 rates (DESIGN.md §5j).  The
    defaults are the conservative word-width ratios — fp32 the classic
    2x of vendor BLAS, the half tiers 4x (far below tensor-core peaks);
    ``perfmodel.calibrate`` measures and overrides them per machine.
    fp64 is *never* in the table: its factor is exactly 1.0 by
    construction, so the default path multiplies rates by 1.0 and every
    bit-identity gate survives.
    """

    name: str
    gemm_rate: float              # large-GEMM effective rate (FLOP/s)
    level3_rate: float            # SYRK/TRSM effective rate
    factor_rate: float            # POTRF/HEEVD blocked-factorization rate
    geqrf_rate: float             # tall-skinny Householder QR rate (panel-bound)
    blas1_bandwidth: float        # streaming bandwidth for BLAS-1 (B/s)
    launch_overhead: float        # fixed per-kernel overhead (s)
    eff_half_flops: float         # flops at which efficiency reaches 50%
    memory_bytes: int             # device memory capacity
    rate_table: tuple[tuple[str, float], ...] = (
        ("fp32", 2.0), ("bf16", 4.0), ("fp16", 4.0),
    )

    def rate_factor(self, token: str) -> float | None:
        """Calibrated throughput multiplier for a precision token, or
        ``None`` when the table has no entry (callers fall back to the
        model-wide defaults).  fp64 is always exactly 1.0."""
        if token in ("fp64", "float64", "complex128"):
            return 1.0
        for name, factor in self.rate_table:
            if name == token:
                return float(factor)
        return None


@dataclass(frozen=True)
class LinkSpec:
    """A latency/bandwidth (alpha-beta) link model."""

    name: str
    latency: float                # alpha (s per message)
    bandwidth: float              # beta^-1 (B/s)

    def time(self, nbytes: float) -> float:
        """Alpha-beta transfer time for one message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class MachineSpec:
    """A cluster description: node counts, devices and interconnect."""

    name: str
    gpus_per_node: int
    gpu: DeviceSpec
    cpu: DeviceSpec                       # per-rank CPU share
    pcie: LinkSpec                        # host <-> device staging
    nvlink: LinkSpec                      # intra-node GPU <-> GPU
    shm_mpi: LinkSpec                     # intra-node, MPI shared memory
    ib_mpi: LinkSpec                      # inter-node, through MPI stack
    ib_nccl: LinkSpec                     # inter-node, through NCCL/GPUDirect
    max_nodes: int = 936
    # Extra fixed software overhead charged per MPI collective call
    # (matching the paper's observation that MPI collectives carry a
    # large constant cost relative to NCCL at these message sizes).
    mpi_call_overhead: float = 30e-6
    nccl_call_overhead: float = 12e-6

    def with_gpu(self, **kw) -> "MachineSpec":
        """A copy of this machine with GPU fields overridden (for sweeps)."""
        return replace(self, gpu=replace(self.gpu, **kw))


def juwels_booster() -> MachineSpec:
    """The paper's testbed.

    * A100 DGEMM with TF64 tensor cores sustains ~15 TF/s on large tiles;
      ZGEMM effective rate is comparable per real flop.
    * cuSOLVER blocked factorizations (POTRF/HEEVD) reach ~2.2 TF/s;
      tall-skinny GEQRF+UNGQR is panel-bound and far slower (~0.2 TF/s),
      which is what makes the v1.2 redundant QR so expensive (Table 2).
    * PCIe gen4 x16 staging: ~22 GB/s with ~10 us setup.
    * One HDR200 adapter per GPU: ~25 GB/s peak; MPI sustains ~9 GB/s
      effective for large allreduce payloads (protocol + host memory
      traffic), a NCCL/GPUDirect ring sustains ~12 GB/s end to end.
    * NVLink3: ~250 GB/s effective per GPU pair.
    """
    gpu = DeviceSpec(
        name="A100-40GB",
        gemm_rate=15.0e12,
        level3_rate=9.0e12,
        factor_rate=2.2e12,
        geqrf_rate=0.50e12,
        blas1_bandwidth=1.3e12,
        launch_overhead=8e-6,
        eff_half_flops=2.0e9,
        memory_bytes=40 * 1024**3,
    )
    cpu = DeviceSpec(
        name="EPYC-7402-12t",
        gemm_rate=0.32e12,
        level3_rate=0.30e12,
        factor_rate=0.12e12,
        geqrf_rate=0.10e12,
        blas1_bandwidth=40e9,
        launch_overhead=1e-6,
        eff_half_flops=5.0e7,
        memory_bytes=128 * 1024**3,
    )
    return MachineSpec(
        name="JUWELS-Booster",
        gpus_per_node=4,
        gpu=gpu,
        cpu=cpu,
        pcie=LinkSpec("PCIe-gen4", latency=10e-6, bandwidth=22e9),
        nvlink=LinkSpec("NVLink3", latency=3e-6, bandwidth=250e9),
        shm_mpi=LinkSpec("SHM-MPI", latency=2e-6, bandwidth=18e9),
        ib_mpi=LinkSpec("HDR200-MPI", latency=6e-6, bandwidth=9e9),
        ib_nccl=LinkSpec("HDR200-NCCL", latency=8e-6, bandwidth=12e9),
    )


def lumi_g() -> MachineSpec:
    """An AMD MI250X cluster in the style of LUMI-G — the paper's stated
    future work ("we plan to port ChASE to AMD GPUs using the RCCL
    library").

    Per *GCD* (each MI250X exposes two; 8 GCDs per node, one rank each):

    * MI250X GCD FP64 matrix peak 47.9 TF/s; real-world rocBLAS DGEMM on
      large tiles sustains ~28 TF/s, rocSOLVER factorizations far less;
    * Infinity Fabric between GCDs ~144 GB/s effective;
    * one 200 Gb/s Slingshot-11 NIC per pair of GCDs: ~10 GB/s effective
      per GCD for RCCL rings, ~7 GB/s for host MPI;
    * host link (Infinity Fabric CPU-GPU) ~36 GB/s.

    The model slots into the same experiments: ``CommBackend.NCCL``
    plays the role of RCCL.
    """
    gpu = DeviceSpec(
        name="MI250X-GCD",
        gemm_rate=28.0e12,
        level3_rate=14.0e12,
        factor_rate=2.0e12,
        geqrf_rate=0.40e12,
        blas1_bandwidth=1.2e12,
        launch_overhead=10e-6,
        eff_half_flops=3.0e9,
        memory_bytes=64 * 1024**3,
    )
    cpu = DeviceSpec(
        name="Trento-8t",
        gemm_rate=0.25e12,
        level3_rate=0.22e12,
        factor_rate=0.10e12,
        geqrf_rate=0.08e12,
        blas1_bandwidth=30e9,
        launch_overhead=1e-6,
        eff_half_flops=5.0e7,
        memory_bytes=64 * 1024**3,
    )
    return MachineSpec(
        name="LUMI-G",
        gpus_per_node=8,
        gpu=gpu,
        cpu=cpu,
        pcie=LinkSpec("IF-CPU-GPU", latency=8e-6, bandwidth=36e9),
        nvlink=LinkSpec("InfinityFabric", latency=4e-6, bandwidth=144e9),
        shm_mpi=LinkSpec("SHM-MPI", latency=2e-6, bandwidth=16e9),
        ib_mpi=LinkSpec("Slingshot-MPI", latency=7e-6, bandwidth=7e9),
        ib_nccl=LinkSpec("Slingshot-RCCL", latency=9e-6, bandwidth=10e9),
        max_nodes=2978,
        mpi_call_overhead=30e-6,
        nccl_call_overhead=14e-6,
    )


def laptop_cpu() -> MachineSpec:
    """A small CPU-only machine model, useful in tests: 1 'GPU' per node
    that is really a CPU share, cheap links.  Keeps the runtime code path
    identical while making modeled times easy to reason about."""
    dev = DeviceSpec(
        name="cpu-core",
        gemm_rate=50e9,
        level3_rate=30e9,
        factor_rate=15e9,
        geqrf_rate=10e9,
        blas1_bandwidth=10e9,
        launch_overhead=1e-7,
        eff_half_flops=1e6,
        memory_bytes=8 * 1024**3,
    )
    link = LinkSpec("shm", latency=1e-6, bandwidth=10e9)
    return MachineSpec(
        name="laptop",
        gpus_per_node=1,
        gpu=dev,
        cpu=dev,
        pcie=LinkSpec("copy", latency=1e-7, bandwidth=20e9),
        nvlink=link,
        shm_mpi=link,
        ib_mpi=link,
        ib_nccl=link,
        max_nodes=1024,
        mpi_call_overhead=2e-6,
        nccl_call_overhead=1e-6,
    )
