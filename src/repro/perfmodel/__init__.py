"""Analytic performance model of the paper's testbed (JUWELS-Booster).

The model supplies three ingredients consumed by :mod:`repro.runtime`:

* :mod:`repro.perfmodel.machine` — machine constants (A100 / EPYC rates,
  NVLink / InfiniBand / PCIe links) bundled in :class:`MachineSpec`;
* :mod:`repro.perfmodel.kernels` — flop counts and modeled times for the
  BLAS/LAPACK kernels ChASE calls (GEMM/HEMM, SYRK, POTRF, TRSM, GEQRF,
  HEEVD, batched BLAS-1);
* :mod:`repro.perfmodel.collectives` — latency/bandwidth models for MPI
  (binomial broadcast, recursive-doubling allreduce with the
  power-of-two round penalty the paper observes in Fig. 3a) and NCCL
  (ring) collectives;
* :mod:`repro.perfmodel.memory` — the per-rank memory footprint of
  Eq. (2) and the v1.2 (LMS) footprint used to reproduce the paper's
  out-of-memory boundary at 144 nodes.
"""

from repro.perfmodel.machine import (
    MachineSpec,
    DeviceSpec,
    LinkSpec,
    juwels_booster,
    lumi_g,
    laptop_cpu,
)
from repro.perfmodel.kernels import (
    gemm_flops,
    syrk_flops,
    potrf_flops,
    trsm_flops,
    geqrf_flops,
    heevd_flops,
    KernelTimeModel,
)
from repro.perfmodel.collectives import (
    CollectiveAlgo,
    CollectiveCharge,
    CollectiveModel,
    CommTopology,
    MpiModel,
    NcclModel,
    collective_cost,
)
from repro.perfmodel.topology import FatTree
from repro.perfmodel.autotune import (
    TuneConfig,
    TuneReport,
    TuneResult,
    autotune,
    default_config,
    enumerate_candidates,
)
from repro.perfmodel.memory import (
    chase_new_scheme_bytes,
    chase_lms_bytes,
    fits_on_device,
)

__all__ = [
    "MachineSpec",
    "DeviceSpec",
    "LinkSpec",
    "juwels_booster",
    "lumi_g",
    "laptop_cpu",
    "gemm_flops",
    "syrk_flops",
    "potrf_flops",
    "trsm_flops",
    "geqrf_flops",
    "heevd_flops",
    "KernelTimeModel",
    "CollectiveModel",
    "MpiModel",
    "NcclModel",
    "CollectiveAlgo",
    "CollectiveCharge",
    "CommTopology",
    "collective_cost",
    "FatTree",
    "TuneConfig",
    "TuneReport",
    "TuneResult",
    "autotune",
    "default_config",
    "enumerate_candidates",
    "chase_new_scheme_bytes",
    "chase_lms_bytes",
    "fits_on_device",
]
