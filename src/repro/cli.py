"""Command-line interface.

Eight subcommands mirror the library's main entry points::

    python -m repro solve --n 600 --nev 30                 # serial solve
    python -m repro solve --n 400 --nev 20 --distributed \\
                          --ranks 4 --backend nccl         # simulated cluster
    python -m repro suite --scale 260                      # Table 1 suite
    python -m repro weak --nodes 1 4 16 64                 # Fig. 3a points
    python -m repro strong --nodes 4 36 144                # Fig. 3b points
    python -m repro tune --ranks 8 --n 800 --nev 96        # autotuner table
    python -m repro serve --jobs jobs.json                 # eigensolver
                                                           # service (§5i)
    python -m repro reproduce -o report.txt                # condensed
                                                           # end-to-end run
    python -m repro campaign run \\
        --spec campaigns/mixed_precision.yml               # declarative
                                                           # campaign (§5k)

``tune`` ranks grid shape x collective algorithm x filter pipelining x
HEMM fusion by modeled makespan (model-only dry runs, no numerics);
``solve --distributed --tuned`` runs the tuner first and solves under
the winning configuration.  The collective algorithm for any simulated
run can also be forced via ``--coll-algo`` or the ``REPRO_COLL_ALGO``
environment variable (``ring`` / ``tree`` / ``hierarchical`` / ``auto``;
DESIGN.md §5e).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import ChaseConfig, ChaseSolver, ConvergenceTrace, chase_serial
from repro.core.lanczos import SpectralBounds
from repro.distributed import (
    DistributedHermitian,
    comm_compress_scope,
    filter_dtype_scope,
    filter_pipeline,
    filter_pipeline_chunks,
    qr_dtype_scope,
)
from repro.matrices import TABLE1, build_problem, uniform_matrix
from repro.reporting import render_series, render_table
from repro.runtime import TRANSPORTS, CommBackend, Grid2D, VirtualCluster

_BACKENDS = {
    "nccl": CommBackend.NCCL,
    "mpi": CommBackend.MPI_STAGED,
    "mpi-host": CommBackend.MPI_HOST,
}

#: every ``--backend`` token: communication models plus execution
#: transports (DESIGN.md §5h)
_BACKEND_CHOICES = tuple(sorted(_BACKENDS)) + TRANSPORTS


def _split_backend(token: str):
    """``(comm model, execution transport)`` for a ``--backend`` token.

    A communication-model name (``nccl``/``mpi``/``mpi-host``) picks the
    cost model and leaves the transport to ``REPRO_BACKEND`` (default
    orchestrated); a transport token (``orchestrated``/``threads``/
    ``mp``) picks the execution backend and models NCCL communication.
    """
    if token in TRANSPORTS:
        return CommBackend.NCCL, token
    return _BACKENDS[token], None


def _precision_stack(args):
    """Context stack applying explicit --filter-dtype/--qr-dtype/
    --comm-compress.

    Flags default to ``None`` so an unset flag leaves the ambient
    toggles alone — in particular ``--tuned`` winners carrying a
    precision config are not clobbered by the flag defaults.
    """
    import contextlib

    stack = contextlib.ExitStack()
    if getattr(args, "filter_dtype", None) is not None:
        stack.enter_context(filter_dtype_scope(args.filter_dtype))
    if getattr(args, "qr_dtype", None) is not None:
        stack.enter_context(qr_dtype_scope(args.qr_dtype))
    if getattr(args, "comm_compress", None) is not None:
        stack.enter_context(comm_compress_scope(args.comm_compress))
    return stack


def _solve_or_fail(solver: ChaseSolver, rng):
    """Run a solve, mapping an unrecoverable fault to ``None``."""
    from repro.runtime import FaultError

    try:
        return solver.solve(rng=rng)
    except FaultError as exc:
        print(f"unrecoverable fault: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return None


def _cmd_solve(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.problem:
        H, prob = build_problem(args.problem, N_target=args.n)
        nev, nex = prob.nev, prob.nex
        print(f"problem {prob.name}: N={prob.N}, nev={nev}, nex={nex}")
    else:
        H = uniform_matrix(args.n, rng=rng)
        nev = args.nev
        nex = args.nex if args.nex is not None else max(2, nev // 2)
        print(f"Uniform matrix: N={args.n}, nev={nev}, nex={nex}")
    cfg = ChaseConfig(nev=nev, nex=nex, tol=args.tol)

    # fault injection / checkpointing (DESIGN.md §5f)
    fault_seed = args.faults
    if fault_seed is None:
        env = os.environ.get("REPRO_FAULT_SEED", "").strip()
        fault_seed = int(env) if env else None
    if (fault_seed is not None or args.checkpoint is not None) \
            and not args.distributed:
        print("--faults/--checkpoint require --distributed", file=sys.stderr)
        return 2
    fault_plan = None
    if fault_seed is not None:
        from repro.runtime import FaultPlan

        fault_plan = FaultPlan.random(
            fault_seed, args.ranks,
            horizon=args.fault_horizon, n_events=args.fault_events,
        )
        print(f"fault plan: seed={fault_seed}, {len(fault_plan)} events "
              f"({', '.join(e.kind.value for e in fault_plan.events)})")
    solver_kw = dict(faults=fault_plan, checkpoint_every=args.checkpoint)

    if args.distributed:
        comm_backend, transport = _split_backend(args.backend)
        if args.tuned:
            from repro.perfmodel.autotune import applied, autotune

            report = autotune(
                args.ranks, H.shape[0], nev, nex,
                backend=comm_backend,
            )
            best = report.best.config
            print(f"tuned config: {best.label()} "
                  f"(modeled x{report.speedup:.3f} vs default)")
            with applied(best, n_ranks=args.ranks,
                         backend=comm_backend, transport=transport) as grid, \
                    _precision_stack(args):
                if args.overlap is not None:
                    grid.set_overlap_efficiency(args.overlap)
                chunks = filter_pipeline_chunks()
                Hd = DistributedHermitian.from_dense(grid, H)
                solver = ChaseSolver(grid, Hd, cfg, **solver_kw)
                res = _solve_or_fail(solver, rng)
                if res is None:
                    return 3
            mode = (
                f", pipelined filter ({chunks} chunks)"
                if best.pipeline_chunks else ""
            )
        else:
            cluster = VirtualCluster(
                args.ranks, backend=comm_backend, transport=transport,
                topology=args.topology, collective_algo=args.coll_algo,
            )
            grid = Grid2D(cluster)
            if args.overlap is not None:
                grid.set_overlap_efficiency(args.overlap)
            Hd = DistributedHermitian.from_dense(grid, H)
            with cluster, \
                    filter_pipeline(args.pipeline_filter,
                                    args.pipeline_chunks), \
                    _precision_stack(args):
                chunks = filter_pipeline_chunks()
                solver = ChaseSolver(grid, Hd, cfg, **solver_kw)
                res = _solve_or_fail(solver, rng)
                if res is None:
                    return 3
            mode = (
                f", pipelined filter ({chunks} chunks)"
                if args.pipeline_filter else ""
            )
        print(f"simulated {grid.p}x{grid.q} grid, backend={args.backend}{mode}")
        if fault_plan is not None or args.checkpoint:
            final = solver.grid
            shrunk = (f", grid shrunk to {final.p}x{final.q}"
                      if final is not grid else "")
            print(f"fault tolerance: {res.recoveries} recoveries, "
                  f"{res.checkpoints} checkpoints{shrunk}")
        print(f"modeled time-to-solution: {res.makespan:.4f} s")
    else:
        res = chase_serial(H, cfg, rng=rng)
    plog = getattr(res, "precision_log", None)
    narrow = [t for t in (plog or ()) if t != "fp64"]
    if narrow:
        reason = res.precision_promote_reason
        promoted = f", promoted to fp64 ({reason})" if reason else ""
        cascade = "/".join(
            f"{plog.count(t)}x{t}" for t in ("fp16", "bf16", "fp32")
            if t in plog
        )
        print(f"mixed precision: {cascade} filter on "
              f"{len(narrow)}/{len(plog)} iterations{promoted}")
    print(f"converged: {res.converged} in {res.iterations} iterations, "
          f"{res.matvecs} MatVecs")
    print(f"QR variants: {res.qr_variants}")
    k = min(10, nev)
    print(f"lowest {k} eigenvalues: {np.round(res.eigenvalues[:k], 8)}")
    return 0 if res.converged else 1


def _cmd_suite(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(TABLE1):
        H, prob = build_problem(name, N_target=args.scale)
        res = chase_serial(
            H, ChaseConfig(nev=prob.nev, nex=prob.nex),
            rng=np.random.default_rng(args.seed),
        )
        rows.append(
            [name, prob.N, prob.nev, prob.nex, res.iterations,
             res.matvecs, "yes" if res.converged else "NO"]
        )
    print(render_table(
        ["Name", "N", "nev", "nex", "Iters", "MatVecs", "Converged"],
        rows, title="Table 1 suite (scaled)",
    ))
    return 0


def _weak_point(nodes: int, backend: CommBackend, scheme: str) -> float:
    rpn, gpr = (1, 4) if scheme == "lms" else (4, 1)
    cluster = VirtualCluster(
        nodes * rpn, backend=backend, ranks_per_node=rpn,
        gpus_per_rank=gpr, phantom=True,
    )
    grid = Grid2D(cluster)
    N = 30_000 * int(round(np.sqrt(nodes)))
    Hd = DistributedHermitian.phantom(grid, N, np.float64)
    solver = ChaseSolver(
        grid, Hd, ChaseConfig(nev=2250, nex=750, deg=20), scheme=scheme
    )
    return solver.solve_phantom(ConvergenceTrace.fixed(1, 3000, deg=20)).makespan


def _cmd_weak(args: argparse.Namespace) -> int:
    nccl, std, lms = [], [], []
    for nodes in args.nodes:
        nccl.append(_weak_point(nodes, CommBackend.NCCL, "new"))
        std.append(_weak_point(nodes, CommBackend.MPI_STAGED, "new"))
        try:
            lms.append(_weak_point(nodes, CommBackend.MPI_STAGED, "lms"))
        except MemoryError:
            lms.append(None)
    print(render_series(
        "weak scaling (s per iteration; N = 30k x sqrt(nodes), ne = 3000)",
        "nodes", args.nodes,
        {"ChASE(NCCL)": nccl, "ChASE(STD)": std, "ChASE(LMS)": lms},
    ))
    return 0


def _cmd_strong(args: argparse.Namespace) -> int:
    from repro.baselines import ElpaModel, ElpaVariant

    N, nev, nex = 115_459, 1200, 400
    ne = nev + nex
    trace = ConvergenceTrace.fixed(7, ne, deg=22)
    rows = {}
    for label, backend, scheme in (
        ("ChASE(NCCL)", CommBackend.NCCL, "new"),
        ("ChASE(STD)", CommBackend.MPI_STAGED, "new"),
        ("ChASE(LMS)", CommBackend.MPI_STAGED, "lms"),
    ):
        series = []
        for nodes in args.nodes:
            rpn, gpr = (1, 4) if scheme == "lms" else (4, 1)
            cluster = VirtualCluster(
                nodes * rpn, backend=backend, ranks_per_node=rpn,
                gpus_per_rank=gpr, phantom=True,
            )
            grid = Grid2D(cluster)
            Hd = DistributedHermitian.phantom(grid, N, np.complex128)
            solver = ChaseSolver(
                grid, Hd, ChaseConfig(nev=nev, nex=nex), scheme=scheme
            )
            series.append(
                solver.solve_phantom(
                    trace, bounds=SpectralBounds(3.0, -1.0, 1.0),
                    include_lanczos=True,
                ).makespan
            )
        rows[label] = series
    e2 = ElpaModel(ElpaVariant.ELPA2)
    rows["ELPA2-GPU"] = [e2.time_to_solution(N, nev, n) for n in args.nodes]
    print(render_series(
        "strong scaling, In2O3 115k, nev=1200 (time-to-solution, s)",
        "nodes", args.nodes, rows,
    ))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Model-driven configuration search (DESIGN.md §5e)."""
    from repro.perfmodel.autotune import (
        DEFAULT_PRECISION_OPTIONS,
        autotune,
        enumerate_candidates,
    )

    nex = args.nex if args.nex is not None else max(2, args.nev // 2)
    if getattr(args, "precision", False):
        # autotune's default candidate set already spans the precision
        # ladder (DEFAULT_PRECISION_OPTIONS); --precision just opts in
        candidates = enumerate_candidates(
            args.ranks, precision_options=DEFAULT_PRECISION_OPTIONS
        )
    else:
        # the plain tune table stays fp64-only: compact, fast, and its
        # ranking is unchanged from earlier releases
        candidates = enumerate_candidates(args.ranks)
    report = autotune(
        args.ranks, args.n, args.nev, nex,
        backend=_split_backend(args.backend)[0],
        iterations=args.iterations,
        candidates=candidates,
    )
    if args.smoke:
        ok = report.best.makespan <= report.default.makespan
        print(f"tune smoke: best {report.best.config.label()} "
              f"{report.best.makespan * 1e3:.3f} ms vs default "
              f"{report.default.makespan * 1e3:.3f} ms "
              f"(x{report.speedup:.3f}) -> {'OK' if ok else 'REGRESSION'}")
        return 0 if ok else 1
    rows = []
    shown = report.results[: args.top] if args.top else report.results
    for i, r in enumerate(shown, 1):
        rows.append([
            i, r.config.label(),
            f"{r.makespan * 1e3:.3f}" if r.feasible else "OOM",
            f"{r.filter_time * 1e3:.3f}",
            f"{r.qr_time * 1e3:.3f}",
            f"{r.comm_time * 1e3:.3f}",
            "default" if r.is_default else "",
        ])
    print(render_table(
        ["#", "config", "makespan (ms)", "filter", "QR", "comm", ""],
        rows,
        title=(
            f"autotune: {args.ranks} ranks, N={args.n}, "
            f"ne={args.nev + nex}, backend={args.backend} "
            f"({len(report.results)} candidates, modeled dry runs)"
        ),
    ))
    print(f"winner: {report.best.config.label()} — modeled "
          f"x{report.speedup:.3f} vs the untuned default")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Eigensolver-as-a-service: run a jobs file through EigenService
    (DESIGN.md §5i) and print the per-job scheduling/warm-start story."""
    from repro.service import EigenService, SolveJob, load_jobs, scf_sequence

    if args.smoke:
        # 3 jobs on 2 shards: a two-step sequence (one warm-start hit)
        # plus an unrelated higher-priority tenant
        hams = scf_sequence(180, 2, seed=args.seed)
        jobs = [
            (SolveJob(H=hams[0], nev=24, nex=12, sequence_id="smoke-scf",
                      step=0, seed=args.seed, tenant="alice"), 0.0),
            (SolveJob(H=hams[1], nev=24, nex=12, sequence_id="smoke-scf",
                      step=1, seed=args.seed + 1, tenant="alice"), 0.0),
            (SolveJob(H=hams[0], nev=16, nex=8, tenant="bob",
                      priority=1, seed=args.seed + 2), 0.0),
        ]
    elif args.jobs:
        jobs = load_jobs(args.jobs)
    else:
        print("serve needs --jobs FILE or --smoke", file=sys.stderr)
        return 2

    svc = EigenService(
        total_ranks=args.ranks, n_shards=args.shards,
        backend=_split_backend(args.backend)[0],
        transport=_split_backend(args.backend)[1],
        quota=args.quota, max_queue=args.max_queue,
        warmstart=not args.no_warmstart, tune=args.tune,
        refresh_extras=args.refresh_extras,
    )
    svc.submit_many(jobs)
    results = svc.run()

    rows = []
    for r in results:
        rows.append([
            r.job_id, r.tenant, r.state.value,
            "-" if r.shard is None else r.shard,
            "-" if r.queue_wait is None else f"{r.queue_wait * 1e3:.2f}",
            f"{r.makespan * 1e3:.2f}" if r.makespan else "-",
            r.warmstart, r.iterations, r.iterations_saved,
            "yes" if r.converged else ("-" if r.chase is None else "NO"),
        ])
    print(render_table(
        ["job", "tenant", "state", "shard", "wait (ms)", "solve (ms)",
         "warm", "iters", "saved", "conv"],
        rows,
        title=(
            f"eigenservice: {len(results)} jobs on {args.shards} shards "
            f"x {args.ranks // args.shards} ranks, backend={args.backend}, "
            f"tune={args.tune}"
        ),
    ))
    done = [r for r in results if r.state.value == "done"]
    horizon = max((r.finish_time or 0.0) for r in results) if results else 0.0
    if horizon > 0:
        print(f"throughput: {len(done)} solved in {horizon:.4f} modeled s "
              f"({len(done) / horizon * 3600:.0f} jobs/hour)")
    if svc.cache is not None:
        print(f"warm-start cache: {svc.cache.hits} hits / "
              f"{svc.cache.misses} misses, {svc.cache.nbytes} B held")
    if args.smoke:
        hits = sum(1 for r in results if r.warm_hit)
        ok = (len(done) == len(results) and hits >= 1
              and all(r.converged for r in done))
        print(f"serve smoke: {len(done)}/{len(results)} done, "
              f"{hits} warm hit(s) -> {'OK' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0 if all(r.state.value == "done" and r.converged
                    for r in results) else 1


def _cmd_reproduce(args: argparse.Namespace) -> int:
    """Condensed end-to-end reproduction: one representative check per
    experiment, written as a plain-text report."""
    import io as _io
    from contextlib import redirect_stdout

    sections: list[str] = []

    def section(title, fn):
        buf = _io.StringIO()
        with redirect_stdout(buf):
            fn()
        sections.append(f"== {title} ==\n{buf.getvalue().rstrip()}")
        print(f"[done] {title}")

    def table1():
        ns = argparse.Namespace(scale=args.scale, seed=11)
        _cmd_suite(ns)

    def table2():
        H, prob = build_problem("In2O3-115k", N_target=args.scale)
        rows = []
        for qr_mode in ("hhqr", "auto"):
            cluster = VirtualCluster(4, backend=CommBackend.NCCL)
            grid = Grid2D(cluster)
            Hd = DistributedHermitian.from_dense(grid, H)
            res = ChaseSolver(
                grid, Hd, ChaseConfig(nev=prob.nev, nex=prob.nex),
                qr_mode=qr_mode,
            ).solve(rng=np.random.default_rng(17))
            rows.append([qr_mode, res.matvecs, res.iterations,
                         round(res.timings["QR"].total * 1e3, 2)])
        print(render_table(
            ["QR", "MatVecs", "Iters", "QR model (ms)"], rows,
            title=(
                f"Table 2 sample ({prob.name} scaled to N={prob.N}; "
                "identical MatVecs/Iters is the paper's key claim — "
                "full-size QR timings: pytest benchmarks/bench_table2_qr.py)"
            ),
        ))
        assert rows[0][1] == rows[1][1], "MatVecs must match across QR"

    def fig3a():
        ns = argparse.Namespace(nodes=[1, 4, 16, 64])
        _cmd_weak(ns)

    def fig3b():
        ns = argparse.Namespace(nodes=[4, 36, 144])
        _cmd_strong(ns)

    section("Table 1 — test suite", table1)
    section("Table 2 — HHQR vs CholeskyQR", table2)
    section("Figure 3a — weak scaling", fig3a)
    section("Figure 3b — strong scaling", fig3b)

    report = "\n\n".join(sections) + "\n"
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(report)
        print(f"report written to {args.output}")
    else:
        print("\n" + report)
    return 0


def _campaign_smoke(args) -> int:
    """The CI gate: run the built-in smoke campaign, interrupt it
    mid-run, resume from the sqlite DB, and require the end state (DB
    dump, text table, JSON section) byte-identical to an uninterrupted
    run — with the resumed pass provably skipping the DONE rows."""
    import json as _json
    import tempfile
    from pathlib import Path

    from repro.campaign import (
        CampaignDB,
        CampaignInterrupted,
        CampaignRunner,
        campaign_section,
        campaign_table,
        smoke_spec,
    )

    spec = smoke_spec()
    total = len(spec.expand())
    kill_after = 2
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        interrupted = CampaignDB(tmp / "interrupted.sqlite")
        try:
            CampaignRunner(
                spec, interrupted, interrupt_after=kill_after,
                interrupt_mid_run=True,
            ).run()
            print("smoke: FAIL — interrupt never fired")
            return 1
        except CampaignInterrupted as exc:
            print(f"smoke: {exc}")
        resumed = CampaignRunner(spec, interrupted).run()
        print(
            f"smoke: resumed — executed {resumed.executed}, "
            f"skipped {resumed.resumed_skips} DONE row(s), "
            f"recovered {resumed.recovered} stale RUNNING row(s)"
        )
        reference = CampaignDB(tmp / "reference.sqlite")
        fresh = CampaignRunner(spec, reference).run()

        failures = []
        if resumed.executed != total - kill_after:
            failures.append(
                f"resume executed {resumed.executed} runs, expected "
                f"{total - kill_after} (DONE rows must be skipped)"
            )
        if resumed.resumed_skips != kill_after:
            failures.append(
                f"resume skipped {resumed.resumed_skips} DONE rows, "
                f"expected {kill_after}"
            )
        if interrupted.dump() != reference.dump():
            failures.append("resumed DB dump differs from uninterrupted")
        table = campaign_table(interrupted, spec.name)
        if table != campaign_table(reference, spec.name):
            failures.append("resumed report table differs")
        section = campaign_section(interrupted, spec.name)
        if section != campaign_section(reference, spec.name):
            failures.append("resumed JSON section differs")
        missed = [
            k for k, v in section.items()
            if k.startswith("target_met_") and not v
        ]
        if missed:
            failures.append(f"smoke gates missed: {missed}")
        if resumed.failed or fresh.failed:
            failures.append("smoke campaign had FAILED runs")
        print(table)
        print(_json.dumps(
            {k: v for k, v in section.items()
             if k.startswith("target_met_")},
            indent=2, sort_keys=True,
        ))
        for f in failures:
            print(f"smoke: FAIL — {f}")
        print(f"campaign smoke: {'FAIL' if failures else 'OK'} "
              f"({total} runs, interrupted after {kill_after}, resumed)")
        return 1 if failures else 0


def _cmd_campaign(args) -> int:
    from pathlib import Path

    from repro.campaign import (
        CampaignDB,
        CampaignInterrupted,
        CampaignRunner,
        SpecError,
        campaign_table,
        load_spec,
        write_report,
    )

    if args.smoke:
        return _campaign_smoke(args)
    if not args.spec:
        print("campaign: --spec is required (or --smoke)")
        return 2
    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        print(f"campaign: bad spec — {exc}")
        return 2
    db_path = Path(args.db) if args.db else \
        Path(args.spec).with_suffix(".sqlite")
    db = CampaignDB(db_path)

    if args.action == "run":
        runner = CampaignRunner(
            spec, db, shards=args.shards,
            interrupt_after=args.interrupt_after,
        )
        try:
            stats = runner.run(only=args.only)
        except CampaignInterrupted as exc:
            print(f"campaign {spec.name!r}: {exc} — resume with the "
                  f"same command (db: {db_path})")
            return 3
        print(
            f"campaign {spec.name!r}: {stats.executed} executed, "
            f"{stats.resumed_skips} skipped as DONE, "
            f"{stats.failed} failed, {stats.recovered} recovered "
            f"(db: {db_path})"
        )
        return 1 if stats.failed else 0
    if args.action == "status":
        counts = db.counts(spec.name)
        print(f"campaign {spec.name!r} ({db_path}):")
        for state, n in sorted(counts.items()):
            print(f"  {state:>8}: {n}")
        print(campaign_table(db, spec.name))
        return 0
    # report: regenerate artifacts from DB queries alone
    txt, js = write_report(
        db, spec.name,
        results_dir=args.results_dir, json_path=args.json,
    )
    print(campaign_table(db, spec.name))
    print(f"report written to {txt} and merged into {js}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="SC'23 ChASE reproduction — solver and experiment CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("solve", help="solve one eigenproblem")
    s.add_argument("--n", type=int, default=600, help="matrix size")
    s.add_argument("--nev", type=int, default=30)
    s.add_argument("--nex", type=int, default=None)
    s.add_argument("--tol", type=float, default=1e-10)
    s.add_argument("--problem", choices=sorted(TABLE1), default=None,
                   help="use a (scaled) Table 1 problem instead of Uniform")
    s.add_argument("--distributed", action="store_true",
                   help="run on the simulated cluster")
    s.add_argument("--ranks", type=int, default=4)
    s.add_argument("--backend", choices=_BACKEND_CHOICES, default="nccl",
                   help="communication model (nccl/mpi/mpi-host) or "
                        "execution transport (orchestrated/threads/mp; "
                        "models NCCL and runs the data plane on real "
                        "threads or processes — DESIGN.md §5h).  The "
                        "REPRO_BACKEND env var picks the transport when "
                        "a model name is given here")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--pipeline-filter", action="store_true",
                   help="chunked nonblocking Chebyshev filter (DESIGN.md §5d)")
    s.add_argument("--pipeline-chunks", type=int, default=None,
                   help="column chunks per pipelined apply (default 4)")
    s.add_argument("--overlap", type=float, default=None,
                   help="nonblocking overlap efficiency in [0,1] "
                        "(default: backend model's value)")
    s.add_argument("--coll-algo",
                   choices=("ring", "tree", "hierarchical", "auto"),
                   default=None,
                   help="collective algorithm (default: REPRO_COLL_ALGO "
                        "env var, else ring — the seed behavior)")
    s.add_argument("--topology", choices=("auto",), default=None,
                   help="attach a fat-tree interconnect for hop-aware "
                        "collective costing (DESIGN.md §5e)")
    s.add_argument("--filter-dtype",
                   choices=("fp16", "bf16", "fp32", "fp64", "auto"),
                   default=None, dest="filter_dtype",
                   help="Chebyshev filter working precision (DESIGN.md "
                        "§5j); a narrow tier starts the condest-gated "
                        "cascade (auto = bf16 -> fp32 -> fp64)")
    s.add_argument("--qr-dtype",
                   choices=("fp16", "bf16", "fp32", "fp64", "auto"),
                   default=None, dest="qr_dtype",
                   help="mixed CholeskyQR2 first-pass precision "
                        "(DESIGN.md §5j); admitted per call by the "
                        "doubling bound on the condition estimate")
    s.add_argument("--comm-compress",
                   choices=("none", "fp32", "bf16", "fp16"),
                   default=None, dest="comm_compress",
                   help="compressed allreduce payload dtype for the "
                        "filter's pipelined reductions")
    s.add_argument("--tuned", action="store_true",
                   help="run the model-driven autotuner first and solve "
                        "under the winning configuration (implies a "
                        "fat-tree topology; see 'repro tune')")
    s.add_argument("--faults", type=int, default=None, metavar="SEED",
                   help="arm a seeded random fault plan on the simulated "
                        "cluster (default: REPRO_FAULT_SEED env var; "
                        "requires --distributed; DESIGN.md §5f)")
    s.add_argument("--fault-events", type=int, default=4,
                   help="events in the random fault plan (default 4)")
    s.add_argument("--fault-horizon", type=float, default=0.01,
                   help="model-time horizon in seconds over which "
                        "comm-level fault events are scheduled")
    s.add_argument("--checkpoint", type=int, default=None, metavar="K",
                   help="checkpoint every K iterations (default: "
                        "REPRO_CHECKPOINT_EVERY env var, else every "
                        "iteration whenever faults are armed)")
    s.set_defaults(func=_cmd_solve)

    s = sub.add_parser("suite", help="run the Table 1 suite")
    s.add_argument("--scale", type=int, default=260)
    s.add_argument("--seed", type=int, default=11)
    s.set_defaults(func=_cmd_suite)

    s = sub.add_parser("weak", help="Fig. 3a weak-scaling points")
    s.add_argument("--nodes", type=int, nargs="+", default=[1, 4, 16, 64])
    s.set_defaults(func=_cmd_weak)

    s = sub.add_parser("strong", help="Fig. 3b strong-scaling points")
    s.add_argument("--nodes", type=int, nargs="+", default=[4, 36, 144])
    s.set_defaults(func=_cmd_strong)

    s = sub.add_parser(
        "tune",
        help="rank simulated configurations by modeled makespan "
             "(grid shape x collective algo x pipelining x fusion)",
    )
    s.add_argument("--ranks", type=int, default=8)
    s.add_argument("--n", type=int, default=800, help="matrix size")
    s.add_argument("--nev", type=int, default=96)
    s.add_argument("--nex", type=int, default=32)
    s.add_argument("--backend", choices=_BACKEND_CHOICES, default="nccl")
    s.add_argument("--iterations", type=int, default=2,
                   help="subspace iterations in the modeled dry run")
    s.add_argument("--top", type=int, default=12,
                   help="rows of the ranked table to print (0 = all)")
    s.add_argument("--precision", action="store_true",
                   help="also enumerate mixed-precision candidates "
                        "(fp32 filter, compressed collectives)")
    s.add_argument("--smoke", action="store_true",
                   help="one-line check that the winner's modeled makespan "
                        "is <= the untuned default's; exit 1 otherwise")
    s.set_defaults(func=_cmd_tune)

    s = sub.add_parser(
        "serve",
        help="eigensolver-as-a-service: schedule a jobs file onto "
             "cluster shards with autotuning and sequence warm-starts "
             "(DESIGN.md §5i)",
    )
    s.add_argument("--jobs", default=None, metavar="FILE",
                   help="jobs file (JSON; YAML when PyYAML is available) "
                        "— see docs/usage.md for the schema")
    s.add_argument("--ranks", type=int, default=8,
                   help="total simulated ranks across all shards")
    s.add_argument("--shards", type=int, default=2,
                   help="disjoint cluster partitions (one job each)")
    s.add_argument("--backend", choices=_BACKEND_CHOICES, default="nccl")
    s.add_argument("--tune", choices=("off", "fast", "full"), default="fast",
                   help="model-driven per-job config selection")
    s.add_argument("--quota", type=int, default=None,
                   help="per-tenant in-flight job quota")
    s.add_argument("--max-queue", type=int, default=64,
                   help="bounded admission queue size")
    s.add_argument("--no-warmstart", action="store_true",
                   help="disable the sequence warm-start cache")
    s.add_argument("--refresh-extras", action="store_true",
                   help="re-randomize the nex buffer columns on warm "
                        "starts (default: reuse the cached subspace "
                        "exactly)")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--smoke", action="store_true",
                   help="self-contained check: 3 jobs on 2 shards with "
                        "one warm-start hit; exit 1 on any failure")
    s.set_defaults(func=_cmd_serve)

    s = sub.add_parser(
        "reproduce",
        help="condensed end-to-end reproduction report "
             "(full benches: pytest benchmarks/ --benchmark-only)",
    )
    s.add_argument("--scale", type=int, default=240)
    s.add_argument("-o", "--output", default=None)
    s.set_defaults(func=_cmd_reproduce)

    s = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns with a resumable run "
             "database (DESIGN.md §5k)",
    )
    s.add_argument("action", choices=("run", "status", "report"),
                   help="run (or resume) the campaign, show DB state, "
                        "or regenerate reports from DB queries alone")
    s.add_argument("--spec", default=None,
                   help="campaign spec (YAML or JSON), e.g. "
                        "campaigns/mixed_precision.yml")
    s.add_argument("--db", default=None,
                   help="sqlite run database "
                        "(default: <spec>.sqlite next to the spec)")
    s.add_argument("--shards", type=int, default=1,
                   help="scheduler shards to fan runs out over")
    s.add_argument("--only", default=None,
                   help="restrict to runs whose label contains this "
                        "substring")
    s.add_argument("--interrupt-after", type=int, default=None,
                   help="kill the campaign after this many executed "
                        "runs (resume testing)")
    s.add_argument("--results-dir", default="benchmarks/results",
                   help="where 'report' writes campaign_<name>.txt")
    s.add_argument("--json", default="BENCH_wallclock.json",
                   help="JSON file 'report' merges its section into")
    s.add_argument("--smoke", action="store_true",
                   help="CI gate: built-in smoke campaign, "
                        "interrupted mid-run and resumed; exits "
                        "nonzero unless the resumed end state is "
                        "byte-identical to an uninterrupted run")
    s.set_defaults(func=_cmd_campaign)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
