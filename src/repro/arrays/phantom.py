"""Metadata-only stand-in for :class:`numpy.ndarray`.

A :class:`PhantomArray` carries shape and dtype but no data.  It supports
exactly the structural operations the ChASE code path needs — column
slicing, transposition metadata, copies — so that the distributed solver
can run unmodified at scales where allocating the real buffers would be
impossible (the paper's weak-scaling experiments reach ``N = 900k``,
i.e. a 13 TB dense matrix).

Arithmetic is intentionally *not* implemented: any attempt to compute
with a phantom buffer outside a cost-model-aware kernel is a bug and
raises immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PhantomArray", "is_phantom", "anyshape", "anydtype"]


@dataclass(frozen=True)
class PhantomArray:
    """Shape/dtype record standing in for a dense array.

    Parameters
    ----------
    shape:
        Tuple of dimensions, as for a NumPy array.
    dtype:
        NumPy dtype (stored canonically via ``np.dtype``).
    """

    shape: tuple[int, ...]
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if any(d < 0 for d in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")

    # -- structural metadata -------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def T(self) -> "PhantomArray":
        return PhantomArray(self.shape[::-1], self.dtype)

    # -- structural operations used by the solver ----------------------------
    def copy(self) -> "PhantomArray":
        return PhantomArray(self.shape, self.dtype)

    def conj(self) -> "PhantomArray":
        return PhantomArray(self.shape, self.dtype)

    def reshape(self, *shape: int) -> "PhantomArray":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        known = [d for d in shape if d != -1]
        prod = 1
        for d in known:
            prod *= d
        if -1 in shape:
            if prod == 0 or self.size % prod:
                raise ValueError(f"cannot reshape {self.shape} into {shape}")
            shape = tuple(self.size // prod if d == -1 else d for d in shape)
        new = PhantomArray(tuple(shape), self.dtype)
        if new.size != self.size:
            raise ValueError(f"cannot reshape {self.shape} into {shape}")
        return new

    def cols(self, start: int, stop: int | None = None) -> "PhantomArray":
        """Column-slice ``self[:, start:stop]`` for a 2-D phantom."""
        if self.ndim != 2:
            raise ValueError("cols() requires a 2-D phantom array")
        stop = self.shape[1] if stop is None else stop
        stop = min(stop, self.shape[1])
        start = max(start, 0)
        return PhantomArray((self.shape[0], max(stop - start, 0)), self.dtype)

    # -- guard rails ----------------------------------------------------------
    def _no_math(self, *_a, **_k):
        raise TypeError(
            "PhantomArray does not support arithmetic; route the operation "
            "through a repro.runtime.device kernel so it is cost-modeled"
        )

    __add__ = __sub__ = __mul__ = __matmul__ = __truediv__ = _no_math
    __radd__ = __rsub__ = __rmul__ = __rmatmul__ = __rtruediv__ = _no_math
    __neg__ = _no_math

    def __array__(self, *_a, **_k):  # pragma: no cover - defensive
        raise TypeError("PhantomArray cannot be materialized as a numpy array")

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of 0-d phantom array")
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhantomArray(shape={self.shape}, dtype={self.dtype})"


def is_phantom(x: object) -> bool:
    """True when *x* is a :class:`PhantomArray` (performance-only buffer)."""
    return isinstance(x, PhantomArray)


def anyshape(x) -> tuple[int, ...]:
    """Shape of a real or phantom array."""
    return tuple(x.shape)


def anydtype(x) -> np.dtype:
    """Dtype of a real or phantom array."""
    return np.dtype(x.dtype)
