"""Helpers that treat real and phantom arrays uniformly."""

from __future__ import annotations

import numpy as np

from repro.arrays.phantom import PhantomArray, is_phantom

__all__ = ["empty_any", "zeros_any", "column_slice", "itemsize_of", "nbytes_of"]


def empty_any(shape, dtype, phantom: bool):
    """Allocate a buffer: phantom metadata or a real empty ndarray."""
    if phantom:
        return PhantomArray(tuple(shape), np.dtype(dtype))
    return np.empty(shape, dtype=dtype)


def zeros_any(shape, dtype, phantom: bool):
    """Allocate a zero buffer (phantom allocation carries no data)."""
    if phantom:
        return PhantomArray(tuple(shape), np.dtype(dtype))
    return np.zeros(shape, dtype=dtype)


def column_slice(x, start: int, stop: int | None = None):
    """``x[:, start:stop]`` working for both array kinds.

    For real arrays this returns a *view* (the solver relies on in-place
    updates through it); for phantoms a sliced metadata record.
    """
    if is_phantom(x):
        return x.cols(start, stop)
    return x[:, slice(start, stop)]


def itemsize_of(x) -> int:
    return np.dtype(x.dtype).itemsize


def nbytes_of(x) -> int:
    if is_phantom(x):
        return x.nbytes
    return int(np.asarray(x).nbytes)
