"""Array abstraction shared by the numeric and performance-only paths.

The simulated runtime executes the *same* solver code in two modes:

* **numeric** — rank-local buffers are real :class:`numpy.ndarray` objects
  and every kernel performs the actual arithmetic;
* **phantom** — buffers are :class:`PhantomArray` metadata records
  (shape + dtype only) so the identical control flow can be driven at
  paper scale (matrices up to ``N = 900k``) purely to exercise the
  performance model.

Kernels in :mod:`repro.runtime.device` dispatch on the buffer type via
:func:`is_phantom`.
"""

from repro.arrays.phantom import PhantomArray, is_phantom, anyshape, anydtype
from repro.arrays.dispatch import (
    empty_any,
    zeros_any,
    column_slice,
    itemsize_of,
    nbytes_of,
)

__all__ = [
    "PhantomArray",
    "is_phantom",
    "anyshape",
    "anydtype",
    "empty_any",
    "zeros_any",
    "column_slice",
    "itemsize_of",
    "nbytes_of",
]
