"""Persistence for solver artifacts.

Two workflows need durable artifacts:

* **record -> replay**: a numeric run's :class:`ConvergenceTrace` is
  recorded once (possibly on another machine) and replayed in phantom
  mode for paper-scale performance studies (``save_trace`` /
  ``load_trace``, JSON);
* **solve -> analyze**: eigenpairs and convergence metadata of a solve
  are archived for post-processing (``save_result`` / ``load_result``,
  NumPy ``.npz``);
* **checkpoint -> restart**: the compact restartable state of the outer
  ChASE iteration (V panel, Ritz values, locking state, degrees) is
  snapshotted every ``k`` iterations and restored after a fault
  (``save_checkpoint`` / ``load_checkpoint``, ``.npz``; DESIGN.md §5f).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.chase import ChaseResult
from repro.core.trace import ConvergenceTrace, IterationRecord

__all__ = [
    "save_trace", "load_trace", "save_result", "load_result",
    "save_checkpoint", "load_checkpoint",
]

_TRACE_VERSION = 1
_CHECKPOINT_VERSION = 1


def save_trace(trace: ConvergenceTrace, path) -> None:
    """Serialize a convergence trace to JSON."""
    payload = {
        "format": "repro.convergence_trace",
        "version": _TRACE_VERSION,
        "records": [
            {
                "degrees": np.asarray(rec.degrees, dtype=np.int64).tolist(),
                "locked_before": int(rec.locked_before),
                "new_converged": int(rec.new_converged),
                "qr_variant": rec.qr_variant,
                "cond_est": float(rec.cond_est),
                "matvecs": int(rec.matvecs),
            }
            for rec in trace.records
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=1))


def load_trace(path) -> ConvergenceTrace:
    """Load a convergence trace saved by :func:`save_trace`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != "repro.convergence_trace":
        raise ValueError(f"{path} is not a convergence-trace file")
    if payload.get("version") != _TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {payload.get('version')!r}"
        )
    trace = ConvergenceTrace()
    for rec in payload["records"]:
        trace.append(
            IterationRecord(
                degrees=np.asarray(rec["degrees"], dtype=np.int64),
                locked_before=rec["locked_before"],
                new_converged=rec["new_converged"],
                qr_variant=rec["qr_variant"],
                cond_est=rec["cond_est"],
                matvecs=rec["matvecs"],
            )
        )
    return trace


def save_result(result: ChaseResult, path) -> None:
    """Archive a solve's eigenpairs and metadata as ``.npz``.

    Phantom results (no eigenvalues) store the timing metadata only.
    """
    arrays: dict[str, np.ndarray] = {
        "converged": np.asarray(result.converged),
        "locked": np.asarray(result.locked),
        "iterations": np.asarray(result.iterations),
        "matvecs": np.asarray(result.matvecs),
        "makespan": np.asarray(result.makespan),
        "qr_variants": np.asarray(result.qr_variants, dtype="U24"),
    }
    if result.eigenvalues is not None:
        arrays["eigenvalues"] = result.eigenvalues
    if result.eigenvectors is not None:
        arrays["eigenvectors"] = result.eigenvectors
    if result.residual_norms is not None:
        arrays["residual_norms"] = result.residual_norms
    for phase, b in result.timings.items():
        arrays[f"timing_{phase}"] = np.asarray(
            [b.compute, b.comm, b.datamove, b.recovery]
        )
    np.savez_compressed(path, **arrays)


def load_result(path) -> dict:
    """Load an archived result as a plain dict of arrays/scalars."""
    with np.load(path, allow_pickle=False) as data:
        out = {}
        timings = {}
        for key in data.files:
            if key.startswith("timing_"):
                vals = data[key]
                # archives written before the RECOVERY category carry
                # [compute, comm, datamove] triples; treat as recovery=0
                rec = float(vals[3]) if vals.shape[0] > 3 else 0.0
                timings[key[len("timing_"):]] = {
                    "compute": float(vals[0]), "comm": float(vals[1]),
                    "datamove": float(vals[2]), "recovery": rec,
                }
            elif data[key].ndim == 0:
                out[key] = data[key].item()
            else:
                out[key] = data[key]
        out["timings"] = timings
    return out


def save_checkpoint(state: dict, path) -> None:
    """Write one solver checkpoint (DESIGN.md §5f) as ``.npz``.

    ``state`` is the dict produced by the solver's checkpointing hook:
    the gathered V panel, Ritz values, residuals (optional), per-column
    degrees, the locking counters and the filter bounds — everything
    Algorithm 2 needs to resume from the end of iteration ``iteration``.
    """
    arrays: dict[str, np.ndarray] = {
        "ckpt_version": np.asarray(_CHECKPOINT_VERSION),
        "iteration": np.asarray(int(state["iteration"])),
        "locked": np.asarray(int(state["locked"])),
        "trace_len": np.asarray(int(state.get("trace_len", 0))),
        "V": np.asarray(state["V"]),
        "ritzv": np.asarray(state["ritzv"]),
        "degrees": np.asarray(state["degrees"], dtype=np.int64),
        "b_sup": np.asarray(float(state["b_sup"])),
        "tol_abs": np.asarray(float(state["tol_abs"])),
    }
    if state.get("resd") is not None:
        arrays["resd"] = np.asarray(state["resd"])
    np.savez_compressed(path, **arrays)


def load_checkpoint(path) -> dict:
    """Load a checkpoint saved by :func:`save_checkpoint`."""
    with np.load(path, allow_pickle=False) as data:
        if "ckpt_version" not in data.files:
            raise ValueError(f"{path} is not a checkpoint file")
        version = int(data["ckpt_version"])
        if version != _CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        return {
            "iteration": int(data["iteration"]),
            "locked": int(data["locked"]),
            "trace_len": int(data["trace_len"]),
            "V": data["V"],
            "ritzv": data["ritzv"],
            "degrees": data["degrees"],
            "b_sup": float(data["b_sup"]),
            "tol_abs": float(data["tol_abs"]),
            "resd": data["resd"] if "resd" in data.files else None,
        }
