"""Ablation — the per-vector filter-degree optimization.

"One of the most important features of ChASE is the optimization of the
degree of the polynomial filter so as to minimize the number of
matrix-vector operations required to achieve convergence" (paper
Sec. 2.1).  This ablation quantifies it on the Table 1 suite: MatVecs
and iterations with the optimizer on vs off, plus the interaction with
the condition estimate (opt drives the block more ill-conditioned early
— Fig. 1's discussion — yet converges faster overall).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, chase_serial
from repro.matrices import TABLE1, build_problem
from repro.reporting import render_table

SCALE_N = 260


def _run(name: str, opt: bool, max_deg: int = 36):
    H, prob = build_problem(name, N_target=SCALE_N)
    return chase_serial(
        H,
        ChaseConfig(nev=prob.nev, nex=prob.nex, opt=opt, max_deg=max_deg),
        rng=np.random.default_rng(11),
    )


def test_ablation_degree_optimization(benchmark):
    rows = []
    wins = 0
    for name in sorted(TABLE1):
        r_opt = _run(name, True)
        r_no = _run(name, False)
        assert r_opt.converged and r_no.converged, name
        saving = 1 - r_opt.matvecs / r_no.matvecs
        rows.append(
            [
                name,
                r_no.matvecs,
                r_no.iterations,
                r_opt.matvecs,
                r_opt.iterations,
                f"{saving:.0%}",
            ]
        )
        wins += r_opt.matvecs < r_no.matvecs
    emit(
        "ablation_degree_opt",
        render_table(
            ["Problem", "MatVecs (no-opt)", "Iters", "MatVecs (opt)",
             "Iters", "saving"],
            rows,
            title="Ablation — per-vector degree optimization (scaled suite)",
        ),
    )
    # the optimizer must win on the clear majority of the suite
    assert wins >= len(TABLE1) - 1
    benchmark.pedantic(_run, args=("NaCl-9k", True), rounds=1, iterations=1)


def test_ablation_max_degree_cap(benchmark):
    """The max-degree cap (36) bounds how ill-conditioned the filtered
    block may become (Sec. 4.2: 'a maximal allowed degree is fixed to 36
    to avoid the matrix of vectors becoming too ill-conditioned')."""
    rows = []
    conds = {}
    for max_deg in (20, 36, 60):
        res = _run("In2O3-76k", True, max_deg=max_deg)
        peak = max(res.cond_estimates)
        conds[max_deg] = peak
        rows.append(
            [max_deg, res.iterations, res.matvecs, peak, res.converged]
        )
    emit(
        "ablation_max_degree",
        render_table(
            ["max_deg", "Iters", "MatVecs", "peak kappa_est", "converged"],
            rows,
            title="Ablation — the maximal-degree cap trades MatVecs for conditioning",
        ),
    )
    # a higher cap admits (weakly) worse conditioning
    assert conds[60] >= conds[36] >= conds[20]
    benchmark.pedantic(_run, args=("In2O3-76k", True, 36), rounds=1, iterations=1)
