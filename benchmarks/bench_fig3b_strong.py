"""Figure 3b — strong scaling on the In2O3 115k problem vs ELPA.

Full solves for the 1200 lowest eigenpairs (nex = 400, ~1% of the
spectrum) of the 115,459-dimensional BSE problem on 4 ... 144 nodes.
ChASE runs replay the Table-2-calibrated convergence trace through the
cost model; ELPA1-GPU / ELPA2-GPU use the phenomenological direct-solver
model.

Shape targets (paper Sec. 4.5.2):

* ChASE(NCCL): ~65 s -> ~3.5 s (18.6x speedup 4 -> 144 nodes);
* ChASE(STD):  ~92 s -> ~14 s  (6.6x);
* ChASE(LMS): ~135 s -> ~55 s  (2.5x — the non-scalable redundant part);
* ELPA1/ELPA2-GPU: only 6.7x / 5.9x, with ELPA2 at ~98 s on 144 nodes —
  ChASE(NCCL) ~28x faster there.
"""

from __future__ import annotations

import pytest

from benchmarks._common import (
    STRONG_N,
    STRONG_NEV,
    emit,
    strong_scaling_point,
    strong_scaling_trace,
)
from repro.baselines import ElpaModel, ElpaVariant
from repro.reporting import render_chart, render_series, render_table
from repro.runtime import CommBackend

NODE_COUNTS = (4, 9, 16, 36, 64, 100, 144)


def _series():
    trace = strong_scaling_trace()
    nccl, std, lms = [], [], []
    for nodes in NODE_COUNTS:
        nccl.append(
            strong_scaling_point(nodes, CommBackend.NCCL, trace=trace).makespan
        )
        std.append(
            strong_scaling_point(
                nodes, CommBackend.MPI_STAGED, trace=trace
            ).makespan
        )
        lms.append(
            strong_scaling_point(
                nodes, CommBackend.MPI_STAGED, "lms", trace=trace
            ).makespan
        )
    e1 = ElpaModel(ElpaVariant.ELPA1)
    e2 = ElpaModel(ElpaVariant.ELPA2)
    elpa1 = [e1.time_to_solution(STRONG_N, STRONG_NEV, n) for n in NODE_COUNTS]
    elpa2 = [e2.time_to_solution(STRONG_N, STRONG_NEV, n) for n in NODE_COUNTS]
    return nccl, std, lms, elpa1, elpa2


def test_fig3b_strong_scaling(benchmark):
    nccl, std, lms, elpa1, elpa2 = _series()
    series = {
        "ChASE(NCCL)": nccl,
        "ChASE(STD)": std,
        "ChASE(LMS)": lms,
        "ELPA1-GPU": elpa1,
        "ELPA2-GPU": elpa2,
    }
    emit(
        "fig3b_strong",
        render_series(
            "Figure 3b — strong scaling, In2O3 115k, nev=1200 nex=400, "
            "time-to-solution (s)",
            "nodes",
            list(NODE_COUNTS),
            series,
        )
        + "\n\n"
        + render_chart(
            "Figure 3b (log-log; seconds vs nodes)",
            list(NODE_COUNTS), series,
        ),
    )
    sp = lambda xs: xs[0] / xs[-1]
    rows = [
        ["ChASE(NCCL)", round(nccl[0], 1), round(nccl[-1], 1), round(sp(nccl), 1), 18.6],
        ["ChASE(STD)", round(std[0], 1), round(std[-1], 1), round(sp(std), 1), 6.6],
        ["ChASE(LMS)", round(lms[0], 1), round(lms[-1], 1), round(sp(lms), 1), 2.5],
        ["ELPA1-GPU", round(elpa1[0], 1), round(elpa1[-1], 1), round(sp(elpa1), 1), 6.7],
        ["ELPA2-GPU", round(elpa2[0], 1), round(elpa2[-1], 1), round(sp(elpa2), 1), 5.9],
    ]
    emit(
        "fig3b_speedups",
        render_table(
            ["Solver", "t(4 nodes) s", "t(144 nodes) s",
             "speedup 4->144", "paper speedup"],
            rows,
            title="Figure 3b summary",
        ),
    )
    # ordering at every node count: NCCL < STD < LMS, NCCL << ELPA2
    for i in range(len(NODE_COUNTS)):
        assert nccl[i] < std[i] < lms[i]
        assert nccl[i] < elpa2[i]
    # scaling quality: NCCL ~ ideal, STD good, LMS poor, ELPA limited
    assert sp(nccl) > 10
    assert 3 < sp(std) < 10
    assert sp(lms) < 3
    assert 4 < sp(elpa2) < 8
    # the 144-node gap to ELPA2 (paper: ~28x)
    assert elpa2[-1] / nccl[-1] > 10

    benchmark.pedantic(
        strong_scaling_point, args=(4, CommBackend.NCCL), rounds=1, iterations=1
    )


def test_fig3b_chase_vs_elpa_crossover_never(benchmark):
    """For this nev/N (~1%), ChASE(NCCL) beats ELPA at *every* node count
    — the paper's target regime (<= 10% of the spectrum)."""
    trace = strong_scaling_trace()
    e2 = ElpaModel(ElpaVariant.ELPA2)
    rows = []
    for nodes in (4, 36, 144):
        t_chase = strong_scaling_point(
            nodes, CommBackend.NCCL, trace=trace
        ).makespan
        t_elpa = e2.time_to_solution(STRONG_N, STRONG_NEV, nodes)
        rows.append([nodes, round(t_chase, 1), round(t_elpa, 1),
                     round(t_elpa / t_chase, 1)])
        assert t_chase < t_elpa
    emit(
        "fig3b_vs_elpa",
        render_table(
            ["Nodes", "ChASE(NCCL) s", "ELPA2-GPU s", "ELPA2/ChASE"],
            rows,
            title="Figure 3b — ChASE vs ELPA2 gap grows with node count",
        ),
    )
    benchmark.pedantic(
        strong_scaling_point,
        args=(144, CommBackend.NCCL),
        rounds=1,
        iterations=1,
    )


def test_fig3b_executed_elpa_consistent_with_model(benchmark):
    """The ELPA curves are backed by an *executed* distributed two-stage
    run on the virtual cluster (repro.baselines.elpa_distributed); the
    closed-form model used for the figure must agree with it."""
    import numpy as np

    from repro.baselines import DistributedElpa
    from repro.distributed import DistributedHermitian
    from repro.runtime import Grid2D, VirtualCluster

    e2 = ElpaModel(ElpaVariant.ELPA2)
    rows = []
    for nodes in (4, 144):
        cluster = VirtualCluster(
            nodes * 4, backend=CommBackend.MPI_STAGED,
            ranks_per_node=4, phantom=True,
        )
        grid = Grid2D(cluster)
        Hp = DistributedHermitian.phantom(grid, STRONG_N, np.complex128)
        executed = DistributedElpa(grid, Hp).solve(STRONG_NEV).makespan
        closed = e2.time_to_solution(STRONG_N, STRONG_NEV, nodes)
        rows.append([nodes, round(executed, 1), round(closed, 1),
                     round(executed / closed, 2)])
        assert executed == pytest.approx(closed, rel=0.25)
    emit(
        "fig3b_elpa_check",
        render_table(
            ["Nodes", "executed ELPA2 (s)", "closed-form ELPA2 (s)", "ratio"],
            rows,
            title="Figure 3b — executed distributed ELPA2 vs the scaling model",
        ),
    )

    def _one():
        cluster = VirtualCluster(16, backend=CommBackend.MPI_STAGED,
                                 ranks_per_node=4, phantom=True)
        grid = Grid2D(cluster)
        Hp = DistributedHermitian.phantom(grid, STRONG_N, np.complex128)
        DistributedElpa(grid, Hp).solve(STRONG_NEV)

    benchmark.pedantic(_one, rounds=1, iterations=1)
