"""Host wall-clock benchmark of the replication-group execution layer.

The simulator executes every rank's numeric work in one host process,
so the seed path pays for each replicated block ``q`` (layout "C") or
``p`` (layout "B") times.  The dedup layer computes every unique block
once and aliases it into the replica slots; this benchmark measures the
real (host) wall-clock win at a few problem/grid sizes, new path vs.
seed path, and verifies on every point that

* the eigenvalues (and vectors) are **bit-identical**, and
* the modeled makespan is **bit-identical**

between the two executions — the dedup layer is a pure host-side
optimization of the simulation itself.

Full solves are dominated by the distributed HEMM, whose ``p x q``
local GEMM blocks are *unique* per rank (no replication to exploit), so
the end-to-end speedup is bounded well below the per-phase wins; the
orthonormalization and Rayleigh-Ritz phases — exactly the phases the
paper's NCCL/algorithmic work targets — dedup by about the replication
factor.  Both numbers are reported, honestly, in
``BENCH_wallclock.json``.

Run:  ``PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke]``
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import RESULTS_DIR, emit
from repro import ChaseConfig, ChaseSolver
from repro.core.qr import QRReport, shifted_cholesky_qr2
from repro.core.rayleigh_ritz import rayleigh_ritz
from repro.core.residuals import residuals
from repro.distributed import (
    BlockMap1D,
    DistributedHemm,
    DistributedHermitian,
    DistributedMultiVector,
    set_numeric_dedup,
)
from repro.runtime import CommBackend, Grid2D, VirtualCluster

JSON_PATH = ROOT / "BENCH_wallclock.json"


def _hermitian(rng, N, dtype):
    A = rng.standard_normal((N, N))
    if np.dtype(dtype).kind == "c":
        A = A + 1j * rng.standard_normal((N, N))
    return ((A + A.conj().T) / 2).astype(dtype)


def _grid(p: int, q: int) -> Grid2D:
    cluster = VirtualCluster(p * q, backend=CommBackend.NCCL)
    return Grid2D(cluster, p, q)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time plus the last return value."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


# ---------------------------------------------------------------------------
# full numeric solves
# ---------------------------------------------------------------------------


def solve_point(N, nev, nex, p, q, dtype, repeats):
    H = _hermitian(np.random.default_rng(1234), N, dtype)

    def run(dedup):
        prev = set_numeric_dedup(dedup)
        try:
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            solver = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex))
            return solver.solve(
                rng=np.random.default_rng(7), return_vectors=True
            )
        finally:
            set_numeric_dedup(prev)

    t_on, r_on = _timed(lambda: run(True), repeats)
    t_off, r_off = _timed(lambda: run(False), repeats)
    point = {
        "kind": "solve",
        "N": N,
        "nev": nev,
        "nex": nex,
        "ne": nev + nex,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "wall_s_dedup": round(t_on, 4),
        "wall_s_seed": round(t_off, 4),
        "speedup": round(t_off / t_on, 3),
        "iterations": r_on.iterations,
        "eigenvalues_identical": bool(
            np.array_equal(r_on.eigenvalues, r_off.eigenvalues)
        ),
        "eigenvectors_identical": bool(
            np.array_equal(r_on.eigenvectors, r_off.eigenvectors)
        ),
        "makespan_identical": bool(r_on.makespan == r_off.makespan),
    }
    assert point["eigenvalues_identical"], "dedup changed the numerics!"
    assert point["makespan_identical"], "dedup changed the modeled time!"
    return point


# ---------------------------------------------------------------------------
# per-phase microbenchmarks (the phases replication actually dedups)
# ---------------------------------------------------------------------------


def qr_point(N, ne, p, q, dtype, repeats):
    rng = np.random.default_rng(5)
    V = np.linalg.qr(rng.standard_normal((N, ne)))[0] @ np.diag(
        np.logspace(0, 4, ne)
    )
    V = V.astype(dtype)

    def run(dedup):
        """Best-of-``repeats`` over the QR call alone (setup untimed;
        the factorization is in place, so C is rebuilt per repeat)."""
        prev = set_numeric_dedup(dedup)
        try:
            best, out = float("inf"), None
            for _ in range(repeats):
                grid = _grid(p, q)
                rowmap = BlockMap1D(N, grid.p)
                C = DistributedMultiVector.from_global(grid, V, rowmap, "C")
                t0 = time.perf_counter()
                shifted_cholesky_qr2(grid, C, QRReport())
                best = min(best, time.perf_counter() - t0)
                out = C.gather(0)
            return best, out
        finally:
            set_numeric_dedup(prev)

    t_on, q_on = run(True)
    t_off, q_off = run(False)
    return {
        "kind": "phase",
        "phase": "shifted_cholesky_qr2",
        "N": N,
        "ne": ne,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "wall_s_dedup": round(t_on, 4),
        "wall_s_seed": round(t_off, 4),
        "speedup": round(t_off / t_on, 3),
        "results_identical": bool(np.array_equal(q_on, q_off)),
    }


def rr_resid_point(N, ne, p, q, dtype, repeats):
    rng = np.random.default_rng(6)
    H = _hermitian(rng, N, dtype)
    Q = np.linalg.qr(
        rng.standard_normal((N, ne)).astype(dtype)
    )[0]

    def run(dedup):
        """Best-of-``repeats`` over the RR + residuals calls alone
        (distribution setup untimed; buffers rebuilt per repeat since
        the back-transform mutates C/C2 in place)."""
        prev = set_numeric_dedup(dedup)
        try:
            best, out = float("inf"), None
            for _ in range(repeats):
                grid = _grid(p, q)
                Hd = DistributedHermitian.from_dense(grid, H)
                hemm = DistributedHemm(Hd)
                C = DistributedMultiVector.from_global(grid, Q, Hd.rowmap, "C")
                C2 = DistributedMultiVector.from_global(grid, Q, Hd.rowmap, "C")
                B = DistributedMultiVector.zeros(
                    grid, Hd.colmap, "B", ne, dtype, False
                )
                B2 = DistributedMultiVector.zeros(
                    grid, Hd.colmap, "B", ne, dtype, False
                )
                t0 = time.perf_counter()
                ritzv = rayleigh_ritz(hemm, C, C2, B, B2, 0)
                res = residuals(hemm, C, C2, B, B2, ritzv, 0)
                best = min(best, time.perf_counter() - t0)
                out = (ritzv, res)
            return best, out
        finally:
            set_numeric_dedup(prev)

    t_on, out_on = run(True)
    t_off, out_off = run(False)
    return {
        "kind": "phase",
        "phase": "rayleigh_ritz+residuals",
        "N": N,
        "ne": ne,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "wall_s_dedup": round(t_on, 4),
        "wall_s_seed": round(t_off, 4),
        "speedup": round(t_off / t_on, 3),
        "results_identical": bool(
            np.array_equal(out_on[0], out_off[0])
            and np.array_equal(out_on[1], out_off[1])
        ),
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem sizes, single repeat (CI)",
    )
    args = ap.parse_args(argv)

    if args.smoke:
        repeats = 1
        solves = [(300, 32, 16, 2, 2, np.float64)]
        phases = [
            ("qr", 300, 48, 2, 2, np.float64),
            ("rr", 300, 48, 2, 2, np.float64),
        ]
    else:
        repeats = 2
        solves = [
            (1200, 120, 40, 2, 2, np.float64),
            (1200, 120, 40, 2, 2, np.complex128),
            (800, 96, 32, 2, 2, np.float64),
            (800, 96, 32, 2, 4, np.float64),
        ]
        phases = [
            ("qr", 1200, 160, 2, 2, np.float64),
            ("qr", 1200, 160, 2, 2, np.complex128),
            ("qr", 800, 128, 2, 4, np.float64),
            ("rr", 1200, 160, 2, 2, np.float64),
            ("rr", 1200, 160, 2, 2, np.complex128),
        ]

    points = []
    for N, nev, nex, p, q, dt in solves:
        pt = solve_point(N, nev, nex, p, q, dt, repeats)
        points.append(pt)
        print(
            f"solve  N={N:5d} ne={nev + nex:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  seed {pt['wall_s_seed']:7.3f}s  "
            f"dedup {pt['wall_s_dedup']:7.3f}s  x{pt['speedup']:.2f}"
        )
    for kind, N, ne, p, q, dt in phases:
        fn = qr_point if kind == "qr" else rr_resid_point
        pt = fn(N, ne, p, q, dt, repeats)
        points.append(pt)
        print(
            f"phase  {pt['phase']:24s} N={N:5d} ne={ne:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  seed {pt['wall_s_seed']:7.3f}s  "
            f"dedup {pt['wall_s_dedup']:7.3f}s  x{pt['speedup']:.2f}"
        )

    solve_pts = [pt for pt in points if pt["kind"] == "solve"]
    phase_pts = [pt for pt in points if pt["kind"] == "phase"]
    headline = max(
        (pt for pt in solve_pts if pt["grid"] == "2x2"),
        key=lambda pt: pt["N"],
    )
    best_phase = max(phase_pts, key=lambda pt: pt["speedup"])
    report = {
        "benchmark": "wallclock",
        "smoke": bool(args.smoke),
        "description": (
            "Host wall-clock of the numeric simulation, replication-aware "
            "dedup path vs. seed path.  Numeric results and modeled "
            "makespans verified bit-identical on every point."
        ),
        "target_speedup": 3.0,
        "headline_solve": headline,
        "best_phase": best_phase,
        "target_met_full_solve": bool(headline["speedup"] >= 3.0),
        "target_met_per_phase": bool(best_phase["speedup"] >= 3.0),
        "note": (
            "Full solves are HEMM-bound; the p x q local GEMM blocks are "
            "unique per rank, so end-to-end host speedup is capped by "
            "Amdahl well below the replication factor.  The phases the "
            "dedup layer targets (QR / Rayleigh-Ritz / residuals) speed "
            "up by roughly the replication factor q."
        ),
        "points": points,
    }
    text = json.dumps(report, indent=2)
    JSON_PATH.write_text(text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wallclock.json").write_text(text + "\n")
    emit(
        "bench_wallclock",
        f"wallclock dedup benchmark -> {JSON_PATH}\n"
        f"headline solve  N={headline['N']} grid={headline['grid']}: "
        f"x{headline['speedup']:.2f}\n"
        f"best phase      {best_phase['phase']} "
        f"grid={best_phase['grid']}: x{best_phase['speedup']:.2f}",
    )


if __name__ == "__main__":
    main()
