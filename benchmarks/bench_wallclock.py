"""Host wall-clock benchmark of the numeric execution tiers.

The simulator executes every rank's numeric work in one host process.
Stacked optimizations (DESIGN.md §5b/§5c), all charge-identical:

* **seed** — the reference path; every replica block recomputed;
* **dedup** (PR-1) — each unique block computed once and aliased into
  the replica slots;
* **fused** — the panel-fused HEMM: one GEMM per grid row against the
  cached ``[H_i0 | ... | H_i,q-1]`` panel (C->B), one k-fused GEMM per
  row over the stacked ``[B_0; ...; B_q-1]`` (B->C, host-side
  reduction summation gone);
* **fused_mt** — fused plus the parallel kernel executor
  (``repro.runtime.executor``, 2 workers).

Every point re-verifies the invariants: eigenvalues/vectors of dedup
are bit-identical to seed, modeled makespans and CommStats are
bit-identical in **every** mode, and fused numerics agree with the
seed to rounding (``<= 1e-13 * ||H||`` per apply; eigenpairs checked
against a serial ``eigvalsh`` oracle).

Full solves are dominated by the distributed HEMM, whose ``p x q``
local GEMM blocks are *unique* per rank, so dedup's end-to-end win is
Amdahl-capped; the fused tier attacks exactly that HEMM term by
replacing ``p*q`` small GEMMs with ``p`` larger ones.  On a BLAS
already at peak for the small blocks (this container: one core) the
fused win is modest; all numbers are reported honestly with
``target_met_*`` booleans in ``BENCH_wallclock.json``.

Run:  ``PYTHONPATH=src python benchmarks/bench_wallclock.py [--smoke]``

``--smoke`` (CI) additionally **gates**: it exits nonzero if the fused
full-solve is slower than the seed path (speedup < 1.0), if the
pipelined filter fails to reduce the modeled filter phase, or if the
autotuned configuration (``repro tune``'s winner on the default grid
shape, DESIGN.md §5e) models slower than the untuned default.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import RESULTS_DIR, emit
from repro import ChaseConfig, ChaseSolver
from repro.core.qr import QRReport, shifted_cholesky_qr2
from repro.core.rayleigh_ritz import rayleigh_ritz
from repro.core.residuals import residuals
from repro.distributed import (
    BlockMap1D,
    DistributedHemm,
    DistributedHermitian,
    DistributedMultiVector,
    filter_pipeline,
    set_hemm_fusion,
    set_numeric_dedup,
)
from repro.runtime import CommBackend, Grid2D, VirtualCluster, set_kernel_workers

JSON_PATH = ROOT / "BENCH_wallclock.json"

#: execution modes: name -> (numeric dedup, HEMM fusion, kernel workers)
MODES = {
    "seed": (False, False, 1),
    "dedup": (True, False, 1),
    "fused": (True, True, 1),
    "fused_mt": (True, True, 2),
}

#: ISSUE acceptance targets (fused tier over the PR-1 dedup tier)
TARGET_SOLVE_SPEEDUP = 1.8
TARGET_HEMM_SPEEDUP = 2.5

#: pipelined-filter acceptance (DESIGN.md §5d): any overlap fraction
#: > 0 must strictly reduce the *modeled* filter-phase time — this is a
#: model-level win, charged-identical in volume, not a host-wall win
TARGET_PIPELINE_FILTER_SPEEDUP = 1.0


@contextlib.contextmanager
def _mode(name: str):
    dedup, fusion, workers = MODES[name]
    p_d = set_numeric_dedup(dedup)
    p_f = set_hemm_fusion(fusion)
    p_w = set_kernel_workers(workers)
    try:
        yield
    finally:
        set_kernel_workers(p_w)
        set_hemm_fusion(p_f)
        set_numeric_dedup(p_d)


def _hermitian(rng, N, dtype):
    A = rng.standard_normal((N, N))
    if np.dtype(dtype).kind == "c":
        A = A + 1j * rng.standard_normal((N, N))
    return ((A + A.conj().T) / 2).astype(dtype)


def _grid(p: int, q: int) -> Grid2D:
    cluster = VirtualCluster(p * q, backend=CommBackend.NCCL)
    return Grid2D(cluster, p, q)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time plus the last return value."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


# ---------------------------------------------------------------------------
# full numeric solves
# ---------------------------------------------------------------------------


def solve_point(N, nev, nex, p, q, dtype, repeats):
    H = _hermitian(np.random.default_rng(1234), N, dtype)

    def run(mode):
        with _mode(mode):
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            solver = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex))
            res = solver.solve(
                rng=np.random.default_rng(7), return_vectors=True
            )
            return res, grid.comm_stats()

    walls, runs = {}, {}
    for mode in MODES:
        walls[mode], runs[mode] = _timed(lambda m=mode: run(m), repeats)

    seed_res, seed_stats = runs["seed"]
    ded_res, _ = runs["dedup"]
    fus_res, _ = runs["fused"]
    oracle = np.linalg.eigvalsh(H)[: nev]
    scale = max(1.0, float(np.abs(oracle).max()))
    point = {
        "kind": "solve",
        "N": N,
        "nev": nev,
        "nex": nex,
        "ne": nev + nex,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        **{f"wall_s_{m}": round(walls[m], 4) for m in MODES},
        "speedup_dedup": round(walls["seed"] / walls["dedup"], 3),
        "speedup_fused": round(walls["seed"] / walls["fused"], 3),
        "speedup_fused_mt": round(walls["seed"] / walls["fused_mt"], 3),
        "speedup_fused_vs_dedup": round(walls["dedup"] / walls["fused"], 3),
        "iterations": seed_res.iterations,
        "eigenvalues_identical": bool(
            np.array_equal(seed_res.eigenvalues, ded_res.eigenvalues)
        ),
        "eigenvectors_identical": bool(
            np.array_equal(seed_res.eigenvectors, ded_res.eigenvectors)
        ),
        "makespan_identical": bool(
            len({runs[m][0].makespan for m in MODES}) == 1
        ),
        "comm_stats_identical": bool(
            all(runs[m][1] == seed_stats for m in MODES)
        ),
        "fused_vs_dedup_max_dlambda": float(
            np.abs(fus_res.eigenvalues - ded_res.eigenvalues).max()
        ),
        "fused_vs_oracle_max_dlambda": float(
            np.abs(fus_res.eigenvalues - oracle).max()
        ),
    }
    assert point["eigenvalues_identical"], "dedup changed the numerics!"
    assert point["makespan_identical"], "a tier changed the modeled time!"
    assert point["comm_stats_identical"], "a tier changed the comm charges!"
    assert point["fused_vs_oracle_max_dlambda"] <= 1e-8 * scale, \
        "fused eigenpairs diverged from the serial oracle!"
    return point


# ---------------------------------------------------------------------------
# pipelined (chunked nonblocking) filter — modeled-time effect
# ---------------------------------------------------------------------------


def pipeline_point(N, nev, nex, p, q, dtype, repeats, chunks=4):
    """Blocking vs chunked-nonblocking filter on one solve, per backend.

    Unlike the tier points above, the pipelined filter is a *model*
    optimization: it leaves host wall-clock roughly unchanged (same
    full-width numerics, plus a cheap per-chunk accounting loop) and
    instead reduces the **modeled** filter-phase time by hiding the
    row/column allreduces behind the next chunk's HEMM, up to the
    backend's overlap efficiency.  Both the modeled speedups and the
    honest host wall overhead are reported.
    """
    H = _hermitian(np.random.default_rng(1234), N, dtype)

    def run(pipeline, backend, overlap=None):
        with _mode("dedup"), filter_pipeline(pipeline, chunks):
            cluster = VirtualCluster(p * q, backend=backend)
            grid = Grid2D(cluster, p, q)
            if overlap is not None:
                grid.set_overlap_efficiency(overlap)
            Hd = DistributedHermitian.from_dense(grid, H)
            res = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex)).solve(
                rng=np.random.default_rng(7)
            )
            return res, res.timings["Filter"], sum(
                s[2] for s in grid.comm_stats()
            )

    point = {
        "kind": "pipeline",
        "N": N,
        "nev": nev,
        "nex": nex,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "chunks": chunks,
    }
    for name, backend in (
        ("nccl", CommBackend.NCCL),
        ("std", CommBackend.MPI_STAGED),
    ):
        wall_b, (rb, fb, bytes_b) = _timed(
            lambda b=backend: run(False, b), repeats
        )
        wall_p, (rp, fp, bytes_p) = _timed(
            lambda b=backend: run(True, b), repeats
        )
        _r0, f0, _b0 = run(True, backend, overlap=0.0)
        point.update({
            f"modeled_makespan_blocking_{name}": round(rb.makespan, 6),
            f"modeled_makespan_pipelined_{name}": round(rp.makespan, 6),
            f"modeled_filter_blocking_{name}": round(fb.total, 6),
            f"modeled_filter_pipelined_{name}": round(fp.total, 6),
            f"modeled_filter_hidden_{name}": round(fp.comm_hidden, 6),
            f"speedup_modeled_filter_{name}": round(fb.total / fp.total, 3),
            f"speedup_modeled_makespan_{name}": round(
                rb.makespan / rp.makespan, 3
            ),
            f"wall_s_blocking_{name}": round(wall_b, 4),
            f"wall_s_pipelined_{name}": round(wall_p, 4),
            f"wall_overhead_{name}": round(wall_p / wall_b, 3),
            f"eigenvalues_identical_{name}": bool(
                np.array_equal(rb.eigenvalues, rp.eigenvalues)
            ),
            f"comm_bytes_identical_{name}": bool(bytes_b == bytes_p),
            f"zero_overlap_matches_blocking_{name}": bool(
                abs(f0.total - fb.total) <= 1e-9 * max(fb.total, 1e-30)
            ),
            f"target_met_{name}": bool(
                fb.total / fp.total > TARGET_PIPELINE_FILTER_SPEEDUP
            ),
        })
        assert point[f"eigenvalues_identical_{name}"], \
            "pipelining changed the numerics!"
        assert point[f"comm_bytes_identical_{name}"], \
            "pipelining changed the communicated byte volume!"
    return point


# ---------------------------------------------------------------------------
# autotuned configuration (DESIGN.md §5e) — modeled-time effect
# ---------------------------------------------------------------------------


def tuned_point(N, nev, nex, n_ranks, dtype, repeats):
    """Untuned default vs the autotuner's winner on the reference grid.

    ``repro tune`` scores the full configuration space with model-only
    dry runs; this point applies the winner *restricted to the default
    (squarest) grid shape* — so the comparison isolates the collective
    algorithm / filter pipelining / fusion choice on the ISSUE's 2x4
    NCCL grid — and verifies on a real numeric solve that the tuned
    configuration models no slower than the default and leaves the
    eigenpairs unchanged.  The full-space winner is reported alongside.
    """
    from repro.perfmodel.autotune import (
        applied,
        autotune,
        default_config,
        enumerate_candidates,
    )

    dc = default_config(n_ranks)
    rep_full = autotune(n_ranks, N, nev, nex, backend=CommBackend.NCCL)
    grid_cands = [
        c for c in enumerate_candidates(n_ranks) if (c.p, c.q) == (dc.p, dc.q)
    ]
    rep = autotune(n_ranks, N, nev, nex, backend=CommBackend.NCCL,
                   candidates=grid_cands)
    best = rep.best.config

    H = _hermitian(np.random.default_rng(1234), N, dtype)

    def run(cfg):
        with _mode("dedup"), applied(
            cfg, n_ranks=n_ranks, backend=CommBackend.NCCL
        ) as grid:
            Hd = DistributedHermitian.from_dense(grid, H)
            res = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex)).solve(
                rng=np.random.default_rng(7)
            )
            return res

    wall_d, res_d = _timed(lambda: run(dc), repeats)
    wall_t, res_t = _timed(lambda: run(best), repeats)
    if best.hemm_fusion:
        # the fused tier is within rounding of the seed numerics (§5c)
        scale = max(1.0, float(np.abs(res_d.eigenvalues).max()))
        numerics_ok = bool(
            np.abs(res_t.eigenvalues - res_d.eigenvalues).max() <= 1e-8 * scale
        )
    else:
        numerics_ok = bool(
            np.array_equal(res_t.eigenvalues, res_d.eigenvalues)
        )
    point = {
        "kind": "tuned",
        "N": N,
        "nev": nev,
        "nex": nex,
        "ranks": n_ranks,
        "grid": f"{dc.p}x{dc.q}",
        "dtype": np.dtype(dtype).name,
        "backend": "nccl",
        "candidates_scored": len(rep_full.results),
        "tuned_config": best.label(),
        "tuned_config_full_space": rep_full.best.config.label(),
        "modeled_dryrun_default_s": round(rep.default.makespan, 6),
        "modeled_dryrun_tuned_s": round(rep.best.makespan, 6),
        "speedup_modeled_dryrun": round(rep.speedup, 3),
        "speedup_modeled_dryrun_full_space": round(rep_full.speedup, 3),
        "modeled_solve_default_s": round(res_d.makespan, 6),
        "modeled_solve_tuned_s": round(res_t.makespan, 6),
        "speedup_modeled_solve": round(res_d.makespan / res_t.makespan, 3),
        "wall_s_default": round(wall_d, 4),
        "wall_s_tuned": round(wall_t, 4),
        "eigenvalues_match": numerics_ok,
        "target_met_tuned": bool(
            rep.best.makespan <= rep.default.makespan
            and res_t.makespan <= res_d.makespan
        ),
    }
    assert point["eigenvalues_match"], "tuning changed the numerics!"
    return point


# ---------------------------------------------------------------------------
# isolated HEMM phase (what the fused tier targets)
# ---------------------------------------------------------------------------


def hemm_point(N, ne, p, q, dtype, repeats, roundtrips=4):
    """``roundtrips`` C->B->C apply pairs per timing, every mode.

    This is the filter's inner loop stripped of everything else — the
    workload the panel fusion and the executor exist for.
    """
    rng = np.random.default_rng(42)
    H = _hermitian(rng, N, dtype)
    V = rng.standard_normal((N, ne)).astype(dtype)

    def run(mode):
        with _mode(mode):
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            hemm = DistributedHemm(Hd)
            C = DistributedMultiVector.from_global(grid, V, Hd.rowmap, "C")
            hemm.apply(C)  # warm the panel/conjugate caches, untimed
            t0 = time.perf_counter()
            for _ in range(roundtrips):
                B = hemm.apply(C, gamma=0.8, alpha=1.1)
                C2 = hemm.apply(B, gamma=0.8, alpha=1.1)
            wall = time.perf_counter() - t0
            makespan = max(r.clock.now for r in grid.ranks)
            return wall, B.gather(), C2.gather(), makespan, grid.comm_stats()

    walls, outs = {}, {}
    for mode in MODES:
        best = None
        for _ in range(repeats):
            got = run(mode)
            if best is None or got[0] < best[0]:
                best = got
        walls[mode], outs[mode] = best[0], best[1:]

    seed = outs["seed"]
    tol = 1e-13 * max(1.0, float(np.linalg.norm(H)))
    point = {
        "kind": "phase",
        "phase": "hemm_roundtrip",
        "N": N,
        "ne": ne,
        "roundtrips": roundtrips,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        **{f"wall_s_{m}": round(walls[m], 4) for m in MODES},
        "speedup_dedup": round(walls["seed"] / walls["dedup"], 3),
        "speedup_fused": round(walls["seed"] / walls["fused"], 3),
        "speedup_fused_mt": round(walls["seed"] / walls["fused_mt"], 3),
        "speedup_fused_vs_dedup": round(walls["dedup"] / walls["fused"], 3),
        "dedup_identical": bool(
            np.array_equal(seed[0], outs["dedup"][0])
            and np.array_equal(seed[1], outs["dedup"][1])
        ),
        "fused_within_tol": bool(
            np.abs(seed[0] - outs["fused"][0]).max() <= tol
            and np.abs(seed[1] - outs["fused"][1]).max() <= tol
        ),
        "makespan_identical": bool(len({o[2] for o in outs.values()}) == 1),
        "comm_stats_identical": bool(
            all(o[3] == seed[3] for o in outs.values())
        ),
    }
    assert point["dedup_identical"], "dedup changed the HEMM numerics!"
    assert point["fused_within_tol"], "fused HEMM outside rounding tolerance!"
    assert point["makespan_identical"], "a tier changed the modeled time!"
    assert point["comm_stats_identical"], "a tier changed the comm charges!"
    return point


# ---------------------------------------------------------------------------
# per-phase microbenchmarks (the phases replication actually dedups)
# ---------------------------------------------------------------------------


def qr_point(N, ne, p, q, dtype, repeats):
    rng = np.random.default_rng(5)
    V = np.linalg.qr(rng.standard_normal((N, ne)))[0] @ np.diag(
        np.logspace(0, 4, ne)
    )
    V = V.astype(dtype)

    def run(dedup):
        """Best-of-``repeats`` over the QR call alone (setup untimed;
        the factorization is in place, so C is rebuilt per repeat)."""
        prev = set_numeric_dedup(dedup)
        try:
            best, out = float("inf"), None
            for _ in range(repeats):
                grid = _grid(p, q)
                rowmap = BlockMap1D(N, grid.p)
                C = DistributedMultiVector.from_global(grid, V, rowmap, "C")
                t0 = time.perf_counter()
                shifted_cholesky_qr2(grid, C, QRReport())
                best = min(best, time.perf_counter() - t0)
                out = C.gather(0)
            return best, out
        finally:
            set_numeric_dedup(prev)

    t_on, q_on = run(True)
    t_off, q_off = run(False)
    return {
        "kind": "phase",
        "phase": "shifted_cholesky_qr2",
        "N": N,
        "ne": ne,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "wall_s_dedup": round(t_on, 4),
        "wall_s_seed": round(t_off, 4),
        "speedup": round(t_off / t_on, 3),
        "results_identical": bool(np.array_equal(q_on, q_off)),
    }


def rr_resid_point(N, ne, p, q, dtype, repeats):
    rng = np.random.default_rng(6)
    H = _hermitian(rng, N, dtype)
    Q = np.linalg.qr(
        rng.standard_normal((N, ne)).astype(dtype)
    )[0]

    def run(dedup):
        """Best-of-``repeats`` over the RR + residuals calls alone
        (distribution setup untimed; buffers rebuilt per repeat since
        the back-transform mutates C/C2 in place)."""
        prev = set_numeric_dedup(dedup)
        try:
            best, out = float("inf"), None
            for _ in range(repeats):
                grid = _grid(p, q)
                Hd = DistributedHermitian.from_dense(grid, H)
                hemm = DistributedHemm(Hd)
                C = DistributedMultiVector.from_global(grid, Q, Hd.rowmap, "C")
                C2 = DistributedMultiVector.from_global(grid, Q, Hd.rowmap, "C")
                B = DistributedMultiVector.zeros(
                    grid, Hd.colmap, "B", ne, dtype, False
                )
                B2 = DistributedMultiVector.zeros(
                    grid, Hd.colmap, "B", ne, dtype, False
                )
                t0 = time.perf_counter()
                ritzv = rayleigh_ritz(hemm, C, C2, B, B2, 0)
                res = residuals(hemm, C, C2, B, B2, ritzv, 0)
                best = min(best, time.perf_counter() - t0)
                out = (ritzv, res)
            return best, out
        finally:
            set_numeric_dedup(prev)

    t_on, out_on = run(True)
    t_off, out_off = run(False)
    return {
        "kind": "phase",
        "phase": "rayleigh_ritz+residuals",
        "N": N,
        "ne": ne,
        "grid": f"{p}x{q}",
        "dtype": np.dtype(dtype).name,
        "wall_s_dedup": round(t_on, 4),
        "wall_s_seed": round(t_off, 4),
        "speedup": round(t_off / t_on, 3),
        "results_identical": bool(
            np.array_equal(out_on[0], out_off[0])
            and np.array_equal(out_on[1], out_off[1])
        ),
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem sizes, single repeat (CI)",
    )
    ap.add_argument(
        "--campaign-db",
        default=None,
        help="also record every emitted table into this campaign DB "
             "(shared results store, DESIGN.md §5k); the declarative "
             "port of this bench is campaigns/wallclock.yml",
    )
    ap.add_argument(
        "--campaign",
        default="wallclock",
        help="campaign name the artifacts are recorded under",
    )
    args = ap.parse_args(argv)

    if args.campaign_db:
        from repro.campaign.db import CampaignDB, campaign_db_scope

        with campaign_db_scope(
            CampaignDB(args.campaign_db), args.campaign
        ):
            return _run(args)
    return _run(args)


def _run(args) -> None:
    if args.smoke:
        repeats = 1
        solves = [(300, 32, 16, 2, 2, np.float64)]
        hemms = [(300, 48, 2, 2, np.float64)]
        phases = [
            ("qr", 300, 48, 2, 2, np.float64),
            ("rr", 300, 48, 2, 2, np.float64),
        ]
        pipelines = [(300, 32, 16, 2, 4, np.float64)]
        tuned = [(300, 32, 16, 8, np.float64)]
    else:
        repeats = 2
        solves = [
            (1200, 120, 40, 2, 2, np.float64),   # headline
            (1200, 120, 40, 2, 2, np.complex128),
            (800, 96, 32, 2, 4, np.float64),
            (600, 64, 24, 4, 4, np.float64),
        ]
        hemms = [
            (1200, 160, 2, 2, np.float64),
            (1200, 160, 2, 4, np.float64),       # ISSUE target point
            (1200, 160, 4, 4, np.float64),
            (1200, 160, 2, 4, np.complex128),
        ]
        phases = [
            ("qr", 1200, 160, 2, 2, np.float64),
            ("qr", 800, 128, 2, 4, np.float64),
            ("rr", 1200, 160, 2, 2, np.float64),
        ]
        pipelines = [
            (800, 96, 32, 2, 4, np.float64),     # ISSUE acceptance grid
            (600, 64, 24, 2, 4, np.complex128),
        ]
        tuned = [(800, 96, 32, 8, np.float64)]   # ISSUE acceptance grid

    points = []
    for N, nev, nex, p, q, dt in solves:
        pt = solve_point(N, nev, nex, p, q, dt, repeats)
        points.append(pt)
        print(
            f"solve  N={N:5d} ne={nev + nex:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  seed {pt['wall_s_seed']:7.3f}s  "
            f"dedup x{pt['speedup_dedup']:.2f}  fused x{pt['speedup_fused']:.2f}  "
            f"fused_mt x{pt['speedup_fused_mt']:.2f}"
        )
    for N, ne, p, q, dt in hemms:
        pt = hemm_point(N, ne, p, q, dt, repeats)
        points.append(pt)
        print(
            f"phase  {pt['phase']:24s} N={N:5d} ne={ne:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  seed {pt['wall_s_seed']:7.3f}s  "
            f"dedup x{pt['speedup_dedup']:.2f}  fused x{pt['speedup_fused']:.2f}  "
            f"fused_mt x{pt['speedup_fused_mt']:.2f}"
        )
    for kind, N, ne, p, q, dt in phases:
        fn = qr_point if kind == "qr" else rr_resid_point
        pt = fn(N, ne, p, q, dt, repeats)
        points.append(pt)
        print(
            f"phase  {pt['phase']:24s} N={N:5d} ne={ne:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  seed {pt['wall_s_seed']:7.3f}s  "
            f"dedup {pt['wall_s_dedup']:7.3f}s  x{pt['speedup']:.2f}"
        )
    for N, nev, nex, p, q, dt in pipelines:
        pt = pipeline_point(N, nev, nex, p, q, dt, repeats)
        points.append(pt)
        print(
            f"pipe   N={N:5d} ne={nev + nex:4d} grid={p}x{q} "
            f"{np.dtype(dt).name:10s}  modeled filter "
            f"nccl x{pt['speedup_modeled_filter_nccl']:.2f} "
            f"std x{pt['speedup_modeled_filter_std']:.2f}  "
            f"wall overhead x{pt['wall_overhead_nccl']:.2f}"
        )

    for N, nev, nex, n_ranks, dt in tuned:
        pt = tuned_point(N, nev, nex, n_ranks, dt, repeats)
        points.append(pt)
        print(
            f"tuned  N={N:5d} ne={nev + nex:4d} grid={pt['grid']} "
            f"{np.dtype(dt).name:10s}  {pt['tuned_config']}  "
            f"modeled solve x{pt['speedup_modeled_solve']:.2f}  "
            f"dry run x{pt['speedup_modeled_dryrun']:.2f}"
        )

    solve_pts = [pt for pt in points if pt["kind"] == "solve"]
    hemm_pts = [pt for pt in points if pt.get("phase") == "hemm_roundtrip"]
    pipe_pts = [pt for pt in points if pt["kind"] == "pipeline"]
    headline = max(
        (pt for pt in solve_pts if pt["grid"] == "2x2"),
        key=lambda pt: pt["N"],
    )
    hemm_target_pts = [pt for pt in hemm_pts if pt["grid"] == "2x4"] or hemm_pts
    best_hemm = max(hemm_target_pts, key=lambda pt: pt["speedup_fused_vs_dedup"])
    headline_pipe = max(pipe_pts, key=lambda pt: pt["N"])
    tuned_pts = [pt for pt in points if pt["kind"] == "tuned"]
    headline_tuned = max(tuned_pts, key=lambda pt: pt["N"])
    report = {
        "benchmark": "wallclock",
        "smoke": bool(args.smoke),
        "description": (
            "Host wall-clock of the numeric simulation across execution "
            "tiers (seed / dedup / fused-panel HEMM / fused + kernel "
            "executor).  Modeled makespans and CommStats verified "
            "bit-identical on every point in every mode; dedup numerics "
            "bit-identical to seed; fused numerics within 1e-13*||H|| "
            "and checked against a serial eigvalsh oracle."
        ),
        "target_solve_speedup_fused_vs_dedup": TARGET_SOLVE_SPEEDUP,
        "target_hemm_speedup_fused_vs_dedup": TARGET_HEMM_SPEEDUP,
        "headline_solve": headline,
        "best_hemm_phase": best_hemm,
        "target_met_full_solve": bool(
            headline["speedup_fused_vs_dedup"] >= TARGET_SOLVE_SPEEDUP
        ),
        "target_met_hemm_phase": bool(
            best_hemm["speedup_fused_vs_dedup"] >= TARGET_HEMM_SPEEDUP
        ),
        "target_pipeline_modeled_filter_speedup": TARGET_PIPELINE_FILTER_SPEEDUP,
        "headline_pipeline": headline_pipe,
        "target_met_pipeline_nccl": bool(headline_pipe["target_met_nccl"]),
        "target_met_pipeline_std": bool(headline_pipe["target_met_std"]),
        "headline_tuned": headline_tuned,
        "target_met_tuned": bool(headline_tuned["target_met_tuned"]),
        "note": (
            "The fused tier replaces the p*q per-block GEMMs with p "
            "panel GEMMs and folds the B->C reduction into the GEMM "
            "k-dimension.  Its headroom is the gap between many-small-GEMM "
            "and one-large-GEMM throughput plus the removed host-side "
            "allreduce summation; on this container's single-core BLAS "
            "the small blocks already run near peak, so the measured "
            "wins sit far below the ISSUE's 1.8x/2.5x aspirational "
            "targets (set with a multi-core BLAS in mind).  The "
            "enforced floor (CI --smoke) is fused >= seed on the full "
            "solve."
        ),
        "points": points,
    }
    text = json.dumps(report, indent=2)
    JSON_PATH.write_text(text + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wallclock.json").write_text(text + "\n")
    emit(
        "bench_wallclock",
        f"wallclock tier benchmark -> {JSON_PATH}\n"
        f"headline solve  N={headline['N']} grid={headline['grid']}: "
        f"dedup x{headline['speedup_dedup']:.2f}  "
        f"fused x{headline['speedup_fused']:.2f}  "
        f"fused_mt x{headline['speedup_fused_mt']:.2f}\n"
        f"best HEMM phase grid={best_hemm['grid']}: "
        f"fused-vs-dedup x{best_hemm['speedup_fused_vs_dedup']:.2f}",
    )

    if args.smoke and headline["speedup_fused"] < 1.0:
        print(
            f"SMOKE GATE FAILED: fused full-solve speedup "
            f"{headline['speedup_fused']:.3f} < 1.0 over the seed path",
            file=sys.stderr,
        )
        sys.exit(1)
    if args.smoke and not (
        headline_pipe["target_met_nccl"] and headline_pipe["target_met_std"]
    ):
        print(
            "SMOKE GATE FAILED: pipelined filter did not reduce the "
            f"modeled filter phase (nccl x"
            f"{headline_pipe['speedup_modeled_filter_nccl']:.3f}, std x"
            f"{headline_pipe['speedup_modeled_filter_std']:.3f})",
            file=sys.stderr,
        )
        sys.exit(1)
    if args.smoke and not headline_tuned["target_met_tuned"]:
        print(
            "SMOKE GATE FAILED: autotuned configuration modeled slower "
            f"than the untuned default (solve x"
            f"{headline_tuned['speedup_modeled_solve']:.3f}, dry run x"
            f"{headline_tuned['speedup_modeled_dryrun']:.3f})",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
