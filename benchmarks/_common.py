"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (Sec. 4).  Numeric solves run at reduced scale (they are what
``pytest-benchmark`` times); paper-scale performance numbers come from
phantom replays through the cost model.  Each experiment's output is
printed and also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import ChaseConfig, ChaseSolver, ConvergenceTrace, IterationRecord
from repro.core.lanczos import SpectralBounds
from repro.distributed import DistributedHermitian
from repro.runtime import CommBackend, Grid2D, VirtualCluster

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: the paper's weak-scaling workload (Figs. 2 and 3a)
WEAK_NEV, WEAK_NEX, WEAK_DEG = 2250, 750, 20
WEAK_N_PER_SQRT_NODE = 30_000

#: the paper's strong-scaling workload (Fig. 3b)
STRONG_N, STRONG_NEV, STRONG_NEX = 115_459, 1200, 400


def emit(name: str, text: str) -> None:
    """Print an experiment's regenerated output and persist it.

    When a campaign DB is active (``campaign_db_scope`` or the
    ``REPRO_CAMPAIGN_DB`` env var — DESIGN.md §5k), the artifact is
    also recorded there, so hand-run benches and campaign runs share
    one results store instead of diverging copies of the same point.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    from repro.campaign.db import record_artifact_if_active

    record_artifact_if_active(name, text)
    print(f"\n{text}\n")


def make_phantom_solver(
    nodes: int,
    N: int,
    nev: int,
    nex: int,
    backend: CommBackend,
    scheme: str = "new",
    dtype=np.float64,
) -> ChaseSolver:
    """A paper-scale solver on metadata-only buffers.

    STD/NCCL run 4 ranks/node x 1 GPU; LMS runs 1 rank/node x 4 GPUs
    (the paper's configurations, Sec. 4).
    """
    if scheme == "lms":
        rpn, gpr = 1, 4
    else:
        rpn, gpr = 4, 1
    cluster = VirtualCluster(
        nodes * rpn, backend=backend, ranks_per_node=rpn,
        gpus_per_rank=gpr, phantom=True,
    )
    grid = Grid2D(cluster)
    H = DistributedHermitian.phantom(grid, N, dtype)
    cfg = ChaseConfig(nev=nev, nex=nex, deg=WEAK_DEG)
    return ChaseSolver(grid, H, cfg, scheme=scheme)


def weak_scaling_point(
    nodes: int, backend: CommBackend, scheme: str = "new"
):
    """One point of the Fig. 2 / 3a workload: a single ChASE iteration
    with deg=20 on a Uniform matrix of N = 30k * sqrt(nodes)."""
    N = WEAK_N_PER_SQRT_NODE * int(round(np.sqrt(nodes)))
    solver = make_phantom_solver(
        nodes, N, WEAK_NEV, WEAK_NEX, backend, scheme
    )
    trace = ConvergenceTrace.fixed(1, WEAK_NEV + WEAK_NEX, deg=WEAK_DEG)
    return solver.solve_phantom(trace)


def strong_scaling_trace(ne: int = STRONG_NEV + STRONG_NEX) -> ConvergenceTrace:
    """Convergence trace for the Fig. 3b full solve of In2O3 115k.

    Calibrated against the paper's own measurements: Table 2 reports the
    In2O3 115k problem converging in 7 iterations; the locked fractions
    and per-iteration degree profiles follow numeric runs of the scaled
    BSE problem (``examples/strong_scaling_trace.py`` regenerates them),
    yielding ~130k column-MatVecs — consistent with the paper's 4-node
    ChASE(NCCL) anchor of ~65 s.
    """
    locked_frac = [0.0, 0.0, 0.30, 0.55, 0.75, 0.90, 0.97]
    tr = ConvergenceTrace()
    for it, lf in enumerate(locked_frac):
        locked = int(lf * ne)
        width = ne - locked
        lo, hi = (20, 20) if it == 0 else (12, 34)
        degs = np.sort(
            (np.ceil(np.linspace(lo, hi, width) / 2) * 2).astype(np.int64)
        )
        tr.append(
            IterationRecord(
                degrees=degs,
                locked_before=locked,
                new_converged=0,
                qr_variant="sCholeskyQR2" if it < 3 else "CholeskyQR2",
                cond_est=1e9,
                matvecs=int(degs.sum()),
            )
        )
    return tr


def strong_scaling_point(
    nodes: int,
    backend: CommBackend,
    scheme: str = "new",
    trace: ConvergenceTrace | None = None,
):
    """One point of the Fig. 3b strong-scaling experiment."""
    solver = make_phantom_solver(
        nodes, STRONG_N, STRONG_NEV, STRONG_NEX, backend, scheme,
        dtype=np.complex128,
    )
    trace = trace if trace is not None else strong_scaling_trace()
    return solver.solve_phantom(
        trace, bounds=SpectralBounds(3.0, -1.0, 1.0), include_lanczos=True
    )
