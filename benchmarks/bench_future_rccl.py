"""Future work — the AMD/RCCL port (paper Sec. 5).

"In the future, we plan to port ChASE to AMD GPUs using the RCCL
library."  The simulated runtime makes this a one-line change: swap the
machine model for an MI250X cluster (LUMI-G style, 8 GCDs per node) and
keep the same code path — the NCCL backend plays the role of RCCL.

This bench runs the paper's weak-scaling workload on the AMD model and
checks that the paper's *conclusions transfer*: device-resident RCCL
collectives keep weak scaling near-flat and strictly beat the staged-MPI
build, even though the absolute per-iteration times shift with the
different GEMM rates and interconnect.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import WEAK_DEG, WEAK_NEV, WEAK_NEX, emit
from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
from repro.distributed import DistributedHermitian
from repro.perfmodel import juwels_booster, lumi_g
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster

NODE_COUNTS = (1, 4, 16, 64)


def _point(machine, nodes: int, backend: CommBackend) -> float:
    rpn = machine.gpus_per_node
    cluster = VirtualCluster(
        nodes * rpn, machine=machine, backend=backend,
        ranks_per_node=rpn, phantom=True,
    )
    grid = Grid2D(cluster)
    # same per-GPU workload density as the JUWELS runs: 30k rows per
    # 2 GPUs along each grid dimension
    N = 15_000 * int(round(np.sqrt(nodes * rpn)))
    H = DistributedHermitian.phantom(grid, N, np.float64)
    solver = ChaseSolver(
        grid, H, ChaseConfig(nev=WEAK_NEV, nex=WEAK_NEX, deg=WEAK_DEG)
    )
    res = solver.solve_phantom(
        ConvergenceTrace.fixed(1, WEAK_NEV + WEAK_NEX, deg=WEAK_DEG)
    )
    return res.makespan


def test_future_rccl_port(benchmark):
    amd = lumi_g()
    nvi = juwels_booster()
    rows = []
    ratios = {"amd": [], "nvidia": []}
    for nodes in NODE_COUNTS:
        t_rccl = _point(amd, nodes, CommBackend.NCCL)
        t_mpi = _point(amd, nodes, CommBackend.MPI_STAGED)
        t_nccl = _point(nvi, nodes, CommBackend.NCCL)
        rows.append(
            [nodes, round(t_rccl, 2), round(t_mpi, 2),
             round(t_mpi / t_rccl, 2), round(t_nccl, 2)]
        )
        ratios["amd"].append(t_rccl)
        ratios["nvidia"].append(t_nccl)
        # RCCL strictly beats staged MPI on AMD, as NCCL does on NVIDIA
        assert t_rccl < t_mpi
    emit(
        "future_rccl",
        render_table(
            ["nodes", "ChASE(RCCL) MI250X s", "ChASE(MPI) MI250X s",
             "RCCL speedup", "ChASE(NCCL) A100 s"],
            rows,
            title="Future work — the RCCL port on a simulated LUMI-G "
                  "(weak scaling, 1 iteration)",
        ),
    )
    # the near-flat weak scaling conclusion transfers to the AMD machine
    growth = ratios["amd"][-1] / ratios["amd"][0]
    assert growth < 2.5
    benchmark.pedantic(
        _point, args=(amd, 4, CommBackend.NCCL), rounds=1, iterations=1
    )
