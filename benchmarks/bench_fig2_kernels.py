"""Figure 2 — kernel profiling: computation / communication / data
movement within Filter, QR, Rayleigh-Ritz and Residuals.

The paper's weak-scaling profile: node counts 1 -> 64, matrix size
30k -> 240k, nev+nex = 3000, a single ChASE iteration, three library
configurations (LMS = v1.2, STD = new scheme + staged MPI, NCCL = new
scheme + device-resident NCCL).

Shape targets at 64 nodes (paper Sec. 4.4): STD over LMS ~{1.6, 22, 10,
8}x for {Filter, QR, RR, Resid}; NCCL over LMS ~{3.8, 1149, 23, 33}x;
NCCL's data-movement bars vanish entirely; on 1 node the LMS filter is
the fastest (4 GPUs per rank, no inter-rank transfers).
"""

from __future__ import annotations


from benchmarks._common import emit, weak_scaling_point
from repro.reporting import render_stacked_bars, render_table
from repro.runtime import CommBackend

NODE_COUNTS = (1, 4, 16, 64)
CONFIGS = (
    ("LMS", CommBackend.MPI_STAGED, "lms"),
    ("STD", CommBackend.MPI_STAGED, "new"),
    ("NCCL", CommBackend.NCCL, "new"),
)
PHASES = ("Filter", "QR", "RR", "Resid")


def _profile(nodes: int):
    out = {}
    for label, backend, scheme in CONFIGS:
        res = weak_scaling_point(nodes, backend, scheme)
        out[label] = res.timings
    return out


def test_fig2_kernel_breakdown(benchmark):
    rows = []
    profiles = {n: _profile(n) for n in NODE_COUNTS}
    for nodes, prof in profiles.items():
        for label in ("LMS", "STD", "NCCL"):
            for ph in PHASES:
                b = prof[label][ph]
                rows.append(
                    [
                        nodes,
                        label,
                        ph,
                        round(b.compute, 3),
                        round(b.comm, 3),
                        round(b.datamove, 3),
                        round(b.total, 3),
                    ]
                )
    bars = []
    for label in ("LMS", "STD", "NCCL"):
        for ph in PHASES:
            b = profiles[64][label][ph]
            bars.append(
                (f"{label}/{ph}",
                 {"compute": b.compute, "comm": b.comm,
                  "datamove": b.datamove})
            )
    emit(
        "fig2_kernels",
        render_table(
            ["Nodes", "Config", "Kernel", "compute (s)",
             "comm (s)", "datamove (s)", "total (s)"],
            rows,
            title=(
                "Figure 2 — per-kernel cost split, weak scaling "
                "(N = 30k x sqrt(nodes), ne = 3000, 1 iteration)"
            ),
        )
        + "\n\n"
        + render_stacked_bars(
            "Figure 2 at 64 nodes (stacked bars, log-free scale)",
            bars,
        ),
    )

    p64 = profiles[64]
    # NCCL eliminates all data movement (paper Sec. 3.3 / Fig. 2)
    for ph in PHASES:
        assert p64["NCCL"][ph].datamove == 0.0, ph
        assert p64["STD"][ph].datamove > 0.0 or ph == "RR", ph
    # ordering LMS > STD > NCCL for every kernel at 64 nodes
    for ph in PHASES:
        assert p64["LMS"][ph].total > p64["STD"][ph].total > p64["NCCL"][ph].total, ph
    # the QR gap is by far the largest (the paper's 1149x observation)
    qr_gap = p64["LMS"]["QR"].total / p64["NCCL"]["QR"].total
    other = max(
        p64["LMS"][ph].total / p64["NCCL"][ph].total
        for ph in ("Filter", "RR", "Resid")
    )
    assert qr_gap > 50
    assert qr_gap > 3 * other
    # on 1 node the LMS filter (4 GPUs per rank, 1x1 grid) is fastest
    p1 = profiles[1]
    assert p1["LMS"]["Filter"].total <= p1["STD"]["Filter"].total

    benchmark.pedantic(_profile, args=(4,), rounds=1, iterations=1)


def test_fig2_speedup_summary(benchmark):
    prof = _profile(64)
    rows = []
    for ph in PHASES:
        lms, std, nccl = (prof[c][ph].total for c in ("LMS", "STD", "NCCL"))
        rows.append(
            [ph, round(lms / std, 1), round(lms / nccl, 1), round(std / nccl, 1)]
        )
    emit(
        "fig2_speedups",
        render_table(
            ["Kernel", "STD over LMS", "NCCL over LMS", "NCCL over STD"],
            rows,
            title=(
                "Figure 2 summary at 64 nodes "
                "(paper: {1.6,22,10,8} / {3.8,1149,23,33} / {2.3,51,2.2,4})"
            ),
        ),
    )
    benchmark.pedantic(
        weak_scaling_point, args=(1, CommBackend.NCCL), rounds=1, iterations=1
    )
