"""Ablation — sensitivity of the conclusions to the machine constants.

The reproduction's performance numbers come from a calibrated machine
model.  A fair question: do the paper's *conclusions* (NCCL flat-ish
weak scaling, NCCL < STD < LMS ordering, huge QR gap) depend on the
exact constants, or are they robust?  This bench perturbs the key rates
by +/-25% and re-runs the weak-scaling workload: every qualitative claim
must survive every perturbation.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import WEAK_DEG, WEAK_NEV, WEAK_NEX, emit
from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
from repro.distributed import DistributedHermitian
from repro.perfmodel import juwels_booster
from repro.perfmodel.machine import LinkSpec
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster
from dataclasses import replace


def _perturbed_machines():
    base = juwels_booster()
    out = {"baseline": base}
    for f in (0.75, 1.25):
        out[f"gemm x{f}"] = base.with_gpu(gemm_rate=base.gpu.gemm_rate * f)
        out[f"ib_nccl x{f}"] = replace(
            base,
            ib_nccl=LinkSpec("ib", base.ib_nccl.latency,
                             base.ib_nccl.bandwidth * f),
        )
        out[f"ib_mpi x{f}"] = replace(
            base,
            ib_mpi=LinkSpec("ib", base.ib_mpi.latency,
                            base.ib_mpi.bandwidth * f),
        )
        out[f"pcie x{f}"] = replace(
            base,
            pcie=LinkSpec("pcie", base.pcie.latency,
                          base.pcie.bandwidth * f),
        )
    return out


def _point(machine, nodes, backend, scheme="new"):
    rpn, gpr = (1, 4) if scheme == "lms" else (4, 1)
    cluster = VirtualCluster(
        nodes * rpn, machine=machine, backend=backend,
        ranks_per_node=rpn, gpus_per_rank=gpr, phantom=True,
    )
    grid = Grid2D(cluster)
    N = 30_000 * int(round(np.sqrt(nodes)))
    H = DistributedHermitian.phantom(grid, N, np.float64)
    solver = ChaseSolver(
        grid, H, ChaseConfig(nev=WEAK_NEV, nex=WEAK_NEX, deg=WEAK_DEG),
        scheme=scheme,
    )
    return solver.solve_phantom(
        ConvergenceTrace.fixed(1, WEAK_NEV + WEAK_NEX, deg=WEAK_DEG)
    )


def test_ablation_model_sensitivity(benchmark):
    rows = []
    for label, machine in _perturbed_machines().items():
        t_nccl_1 = _point(machine, 1, CommBackend.NCCL).makespan
        r_nccl = _point(machine, 64, CommBackend.NCCL)
        r_std = _point(machine, 64, CommBackend.MPI_STAGED)
        r_lms = _point(machine, 64, CommBackend.MPI_STAGED, "lms")
        growth = r_nccl.makespan / t_nccl_1
        qr_gap = r_lms.timings["QR"].total / r_nccl.timings["QR"].total
        rows.append(
            [
                label,
                round(r_nccl.makespan, 2),
                round(r_std.makespan, 2),
                round(r_lms.makespan, 2),
                round(growth, 2),
                round(qr_gap, 1),
            ]
        )
        # the paper's qualitative conclusions under every perturbation:
        assert r_nccl.makespan < r_std.makespan < r_lms.makespan, label
        assert growth < 2.3, label                      # near-flat NCCL
        assert qr_gap > 30, label                       # huge QR gap
        dm = sum(b.datamove for b in r_nccl.timings.values())
        assert dm == 0.0, label                         # no NCCL staging
    emit(
        "ablation_sensitivity",
        render_table(
            ["perturbation", "NCCL@64 (s)", "STD@64 (s)", "LMS@64 (s)",
             "NCCL growth 1->64", "LMS/NCCL QR gap"],
            rows,
            title="Ablation — conclusions under +/-25% machine-constant "
                  "perturbations (all asserted)",
        ),
    )
    benchmark.pedantic(
        _point, args=(juwels_booster(), 4, CommBackend.NCCL),
        rounds=1, iterations=1,
    )
