"""Ablation — rank placement on nodes, flat vs hop-aware costing.

With the default block placement (consecutive ranks per node) and a
row-major 2D grid, the *row* communicators are intra-node (NVLink for
NCCL) while the *column* communicators cross the network.  ChASE's
costliest collectives are the filter's allreduces: their communicator
direction alternates with the HEMM direction, so placement shifts where
the expensive hops land.  This ablation measures a single weak-scaling
iteration under both placements and verifies the simulator resolves the
difference — the kind of topology experiment the virtual cluster makes
free.

Each point is costed twice (DESIGN.md §5e): with the seed's flat
intra/inter-node *boolean* (no topology attached) and with a two-level
fat tree attached, where inter-node legs pay for the deepest level they
cross and for core oversubscription.  The flat column reproduces the
seed numbers exactly; the hop-aware column can only be >= it, and the
gap is the modeled price of deep crossings the boolean cannot see.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import WEAK_DEG, WEAK_NEV, WEAK_NEX, emit
from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
from repro.distributed import DistributedHermitian
from repro.perfmodel import FatTree
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster


def _point(nodes: int, placement: str, backend: CommBackend,
           tree: FatTree | None = None):
    cluster = VirtualCluster(
        nodes * 4, backend=backend, ranks_per_node=4,
        phantom=True, placement=placement, topology=tree,
    )
    grid = Grid2D(cluster)
    N = 30_000 * int(round(np.sqrt(nodes)))
    H = DistributedHermitian.phantom(grid, N, np.float64)
    solver = ChaseSolver(
        grid, H, ChaseConfig(nev=WEAK_NEV, nex=WEAK_NEX, deg=WEAK_DEG)
    )
    res = solver.solve_phantom(
        ConvergenceTrace.fixed(1, WEAK_NEV + WEAK_NEX, deg=WEAK_DEG)
    )
    # which communicators stay on-node?
    intra_rows = sum(not grid.row_comm(i).spans_nodes for i in range(grid.p))
    intra_cols = sum(not grid.col_comm(j).spans_nodes for j in range(grid.q))
    return res, intra_rows, intra_cols, grid


def test_ablation_rank_placement(benchmark):
    rows = []
    for nodes in (4, 16):
        tree = FatTree(nodes, nodes_per_leaf=2)
        for placement in ("block", "round_robin"):
            flat, ir, ic, _ = _point(nodes, placement, CommBackend.NCCL)
            hop, _, _, grid = _point(
                nodes, placement, CommBackend.NCCL, tree=tree
            )
            # fat-tree exposure of the first row communicator's traffic
            prof = tree.comm_profile([r.node for r in grid.row_comm(0).ranks])
            rows.append(
                [nodes, placement, ir, ic,
                 round(prof["core_fraction"], 2),
                 round(flat.timings["Filter"].comm, 3),
                 round(hop.timings["Filter"].comm, 3),
                 round(flat.makespan, 3),
                 round(hop.makespan, 3),
                 round(hop.makespan / flat.makespan, 3)]
            )
    emit(
        "ablation_placement",
        render_table(
            ["nodes", "placement", "intra-node row comms",
             "intra-node col comms", "row-comm core exposure",
             "Filter comm flat (s)", "Filter comm hop-aware (s)",
             "total flat (s)", "total hop-aware (s)", "hop/flat"],
            rows,
            title="Ablation — rank placement decides which communicators "
                  "stay on NVLink; hop-aware costing prices the crossings "
                  "the flat boolean cannot see",
        ),
    )
    # the placements must differ in on-node communicator structure ...
    by = {(r[0], r[1]): r for r in rows}
    assert by[(4, "block")][2] != by[(4, "round_robin")][2] or \
           by[(4, "block")][3] != by[(4, "round_robin")][3]
    # ... and the simulator must resolve a timing difference from it
    assert by[(4, "block")][7] != by[(4, "round_robin")][7]
    # hop-aware costing can only add to the flat boolean's charges ...
    for r in rows:
        assert r[8] >= r[7], r
    # ... and must actually price a deep crossing somewhere in the sweep
    assert any(r[8] > r[7] for r in rows)

    benchmark.pedantic(
        _point, args=(4, "block", CommBackend.NCCL), rounds=1, iterations=1
    )
