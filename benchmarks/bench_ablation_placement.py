"""Ablation — rank placement on nodes.

With the default block placement (consecutive ranks per node) and a
row-major 2D grid, the *row* communicators are intra-node (NVLink for
NCCL) while the *column* communicators cross the network.  ChASE's
costliest collectives are the filter's allreduces: their communicator
direction alternates with the HEMM direction, so placement shifts where
the expensive hops land.  This ablation measures a single weak-scaling
iteration under both placements and verifies the simulator resolves the
difference — the kind of topology experiment the virtual cluster makes
free.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import WEAK_DEG, WEAK_NEV, WEAK_NEX, emit
from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
from repro.distributed import DistributedHermitian
from repro.perfmodel import FatTree
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster


def _point(nodes: int, placement: str, backend: CommBackend):
    cluster = VirtualCluster(
        nodes * 4, backend=backend, ranks_per_node=4,
        phantom=True, placement=placement,
    )
    grid = Grid2D(cluster)
    N = 30_000 * int(round(np.sqrt(nodes)))
    H = DistributedHermitian.phantom(grid, N, np.float64)
    solver = ChaseSolver(
        grid, H, ChaseConfig(nev=WEAK_NEV, nex=WEAK_NEX, deg=WEAK_DEG)
    )
    res = solver.solve_phantom(
        ConvergenceTrace.fixed(1, WEAK_NEV + WEAK_NEX, deg=WEAK_DEG)
    )
    # which communicators stay on-node?
    intra_rows = sum(not grid.row_comm(i).spans_nodes for i in range(grid.p))
    intra_cols = sum(not grid.col_comm(j).spans_nodes for j in range(grid.q))
    return res, intra_rows, intra_cols


def test_ablation_rank_placement(benchmark):
    rows = []
    for nodes in (4, 16):
        tree = FatTree(nodes, nodes_per_leaf=2)
        for placement in ("block", "round_robin"):
            res, ir, ic = _point(nodes, placement, CommBackend.NCCL)
            # fat-tree exposure of the first row communicator's traffic
            cluster = VirtualCluster(
                nodes * 4, backend=CommBackend.NCCL, ranks_per_node=4,
                phantom=True, placement=placement,
            )
            grid = Grid2D(cluster)
            prof = tree.comm_profile([r.node for r in grid.row_comm(0).ranks])
            rows.append(
                [nodes, placement, ir, ic,
                 round(prof["core_fraction"], 2),
                 round(res.timings["Filter"].comm, 3),
                 round(res.makespan, 3)]
            )
    emit(
        "ablation_placement",
        render_table(
            ["nodes", "placement", "intra-node row comms",
             "intra-node col comms", "row-comm core exposure",
             "Filter comm (s)", "total (s)"],
            rows,
            title="Ablation — rank placement decides which communicators "
                  "stay on NVLink",
        ),
    )
    # the placements must differ in on-node communicator structure ...
    by = {(r[0], r[1]): r for r in rows}
    assert by[(4, "block")][2] != by[(4, "round_robin")][2] or \
           by[(4, "block")][3] != by[(4, "round_robin")][3]
    # ... and the simulator must resolve a timing difference from it
    assert by[(4, "block")][6] != by[(4, "round_robin")][6]

    benchmark.pedantic(
        _point, args=(4, "block", CommBackend.NCCL), rounds=1, iterations=1
    )
