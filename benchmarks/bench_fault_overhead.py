"""Modeled cost of resilience: checkpointing and fault recovery.

The fault subsystem (DESIGN.md §5f) buys crash-consistency with model
time: synchronous end-of-iteration checkpoints stream the C panel to a
modeled parallel filesystem (RECOVERY category), and a recovery replays
the iterations since the last verified snapshot.  This benchmark prices
both on the paper's 2x4 NCCL grid:

* **checkpoint overhead** — makespan of a solve checkpointing every
  1/2/4 iterations vs the fault-free baseline (numerics bit-identical
  by construction; re-verified on every point);
* **crash recovery** — a kernel crash mid-solve, restored from the last
  per-iteration checkpoint (eigenpairs bit-identical to fault-free);
* **death recovery** — a rank death early in the solve: restore onto
  the squarest surviving 7-rank grid and re-converge (eigenpairs
  checked against the serial ``eigvalsh`` oracle).

Run:  ``PYTHONPATH=src python benchmarks/bench_fault_overhead.py [--smoke]``

``--smoke`` (CI) runs a reduced problem and **gates**: it exits nonzero
if any verification fails, if per-iteration checkpointing inflates the
modeled makespan beyond the target bound, or if either recovery
scenario exceeds its makespan-ratio target.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, ChaseSolver
from repro.distributed import DistributedHermitian
from repro.runtime import (
    CommBackend,
    FaultEvent,
    FaultKind,
    FaultPlan,
    Grid2D,
    VirtualCluster,
)

#: checkpoint-every-1 must stay below this fraction of the fault-free
#: makespan (the snapshot is one N/p x ne panel per grid row per
#: iteration against an 8 GB/s modeled filesystem)
CKPT_OVERHEAD_TARGET = 0.25
#: crash recovery replays at most one iteration from the last
#: per-iteration checkpoint
CRASH_RATIO_TARGET = 2.0
#: death recovery restarts from the initial snapshot on a smaller grid
DEATH_RATIO_TARGET = 6.0


def _problem(n: int):
    rng = np.random.default_rng(20230707)
    A = rng.standard_normal((n, n))
    return ((A + A.T) / 2).astype(np.float64)


def _solve(H, cfg, plan=None, checkpoint_every=None):
    cluster = VirtualCluster(8, backend=CommBackend.NCCL)
    grid = Grid2D(cluster)  # 2x4
    assert (grid.p, grid.q) == (2, 4)
    Hd = DistributedHermitian.from_dense(grid, H)
    solver = ChaseSolver(
        grid, Hd, cfg, faults=plan, checkpoint_every=checkpoint_every
    )
    res = solver.solve(rng=np.random.default_rng(515), return_vectors=True)
    return solver, res


def run(n: int, nev: int, nex: int) -> tuple[str, dict]:
    H = _problem(n)
    cfg = ChaseConfig(nev=nev, nex=nex, tol=1e-9, max_iter=60)
    oracle = np.sort(np.linalg.eigvalsh(H))[:nev]

    _, base = _solve(H, cfg)
    assert base.converged
    rows = [("fault-free", base.makespan, base.iterations, 0, 0, 1.0)]

    overheads = {}
    for every in (4, 2, 1):
        _, res = _solve(H, cfg, checkpoint_every=every)
        np.testing.assert_array_equal(res.eigenvalues, base.eigenvalues)
        np.testing.assert_array_equal(res.eigenvectors, base.eigenvectors)
        overheads[every] = res.makespan / base.makespan - 1.0
        rows.append((f"checkpoint every {every}", res.makespan,
                     res.iterations, 0, res.checkpoints,
                     res.makespan / base.makespan))

    crash_plan = FaultPlan(events=(
        FaultEvent(FaultKind.KERNEL_CRASH, rank=5,
                   iteration=max(2, base.iterations // 2)),
    ))
    _, crash = _solve(H, cfg, plan=crash_plan)
    np.testing.assert_array_equal(crash.eigenvalues, base.eigenvalues)
    crash_ratio = crash.makespan / base.makespan
    rows.append(("kernel-crash recovery", crash.makespan, crash.iterations,
                 crash.recoveries, crash.checkpoints, crash_ratio))

    death_plan = FaultPlan(events=(
        FaultEvent(FaultKind.RANK_DEATH, rank=3,
                   time=0.1 * base.makespan),
    ))
    death_solver, death = _solve(H, cfg, plan=death_plan)
    assert death.converged
    assert death_solver.grid.p * death_solver.grid.q == 7
    np.testing.assert_allclose(death.eigenvalues, oracle, rtol=0, atol=1e-6)
    death_ratio = death.makespan / base.makespan
    rows.append((f"rank-death recovery ({death_solver.grid.p}x"
                 f"{death_solver.grid.q})", death.makespan, death.iterations,
                 death.recoveries, death.checkpoints, death_ratio))

    gates = {
        "target_met_ckpt_overhead": overheads[1] < CKPT_OVERHEAD_TARGET,
        "target_met_crash_recovery": crash_ratio < CRASH_RATIO_TARGET,
        "target_met_death_recovery": death_ratio < DEATH_RATIO_TARGET,
    }

    lines = [
        "Fault-tolerance overhead, 2x4 NCCL grid "
        f"(N={n}, nev={nev}, nex={nex}, modeled seconds)",
        "",
        f"{'scenario':<28} {'makespan':>10} {'iters':>6} "
        f"{'recov':>6} {'ckpts':>6} {'vs base':>8}",
    ]
    for name, mk, iters, rec, ck, ratio in rows:
        lines.append(f"{name:<28} {mk:>10.5f} {iters:>6d} "
                     f"{rec:>6d} {ck:>6d} {ratio:>7.3f}x")
    lines += [
        "",
        f"checkpoint overhead: every-4 {overheads[4] * 100:+.2f}%, "
        f"every-2 {overheads[2] * 100:+.2f}%, "
        f"every-1 {overheads[1] * 100:+.2f}% "
        f"(target < {CKPT_OVERHEAD_TARGET * 100:.0f}%)",
        f"crash-recovery makespan ratio {crash_ratio:.3f}x "
        f"(target < {CRASH_RATIO_TARGET:.1f}x); "
        f"death-recovery {death_ratio:.3f}x "
        f"(target < {DEATH_RATIO_TARGET:.1f}x)",
        "numerics: checkpointed + crash-recovered eigenpairs bit-identical "
        "to fault-free; death-recovered vs eigvalsh oracle <= 1e-6",
    ] + [f"{k}: {v}" for k, v in gates.items()]
    return "\n".join(lines), gates


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="reduced scale; exit nonzero when a gate fails")
    args = ap.parse_args(argv)
    if args.smoke:
        text, gates = run(n=240, nev=20, nex=10)
    else:
        text, gates = run(n=480, nev=40, nex=20)
    emit("bench_fault_overhead", text)
    if args.smoke and not all(gates.values()):
        print("SMOKE GATE FAILED:",
              ", ".join(k for k, v in gates.items() if not v))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
