"""Ablation — QR variant selection (Algorithm 4's design choices).

Sweeps the filtered-block condition number and compares, for each forced
QR variant and for the heuristic, (a) the orthogonality error of the Q
factor and (b) the modeled cost at paper scale.  Demonstrates why the
selection mechanism exists:

* CholeskyQR1 is cheapest but loses orthogonality beyond kappa ~ 1e4
  (u^-1/2 applies to kappa^2 of the Gram matrix);
* CholeskyQR2 holds to ~1e8, then breaks down;
* shifted CholeskyQR2 survives to ~u^-1 at ~1.5x the CholeskyQR2 cost;
* HHQR always works but costs orders of magnitude more;
* the heuristic, fed the Algorithm 5 estimate, always picks a variant
  that succeeds while never paying for more stability than needed.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.core.qr import QRReport, caqr_1d, cholesky_qr, shifted_cholesky_qr2
from repro.baselines import hhqr_1d
from repro.distributed import BlockMap1D, DistributedMultiVector
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster

M, NE = 12000, 384
CONDITIONS = (1e1, 1e4, 1e7, 1e10, 1e13)


def _conditioned(rng, cond):
    U = np.linalg.qr(rng.standard_normal((M, NE)))[0]
    W = np.linalg.qr(rng.standard_normal((NE, NE)))[0]
    s = np.logspace(0, -np.log10(cond), NE)
    return (U * s[None, :]) @ W.T


def _fresh(V):
    cluster = VirtualCluster(4, backend=CommBackend.NCCL)
    grid = Grid2D(cluster)
    C = DistributedMultiVector.from_global(grid, V, BlockMap1D(M, grid.p), "C")
    return grid, C


def _ortho(C):
    Q = C.gather(0)
    return float(np.abs(Q.T @ Q - np.eye(NE)).max())


def _run_variant(V, variant):
    grid, C = _fresh(V)
    rep = QRReport()
    if variant == "CholeskyQR1":
        info = cholesky_qr(grid, C, 1, rep)
    elif variant == "CholeskyQR2":
        info = cholesky_qr(grid, C, 2, rep)
    elif variant == "sCholeskyQR2":
        shifted_cholesky_qr2(grid, C, rep)
        info = 1 if rep.fallback_hhqr else 0
    else:  # HHQR
        hhqr_1d(grid, C)
        info = 0
    return info, _ortho(C), grid.cluster.makespan()


def test_ablation_qr_variants(benchmark):
    rng = np.random.default_rng(23)
    rows = []
    for cond in CONDITIONS:
        V = _conditioned(rng, cond)
        for variant in ("CholeskyQR1", "CholeskyQR2", "sCholeskyQR2", "HHQR"):
            info, err, t = _run_variant(V, variant)
            status = "breakdown" if info else ("ok" if err < 1e-8 else "lost-ortho")
            rows.append([f"{cond:.0e}", variant, status, err, round(t * 1e3, 3)])
        # the heuristic with an honest estimate always succeeds
        grid, C = _fresh(V)
        rep = caqr_1d(grid, C, est_cond=cond * 2)
        err = _ortho(C)
        rows.append(
            [f"{cond:.0e}", f"auto->{rep.variant}", "ok", err,
             round(grid.cluster.makespan() * 1e3, 3)]
        )
        assert err < 1e-8, cond
    emit(
        "ablation_qr_variants",
        render_table(
            ["kappa(X)", "Variant", "Status", "||Q^H Q - I||", "model t (ms)"],
            rows,
            title="Ablation — QR variants across condition numbers "
                  f"({M}x{NE} blocks, 2x2 grid)",
        ),
    )
    # the design claims the ablation must support
    V = _conditioned(rng, 1e7)
    _, err1, t1 = _run_variant(V, "CholeskyQR1")
    _, err2, t2 = _run_variant(V, "CholeskyQR2")
    _, _, t_hh = _run_variant(V, "HHQR")
    assert err1 > 1e-8 > err2          # QR2 rescues what QR1 loses
    assert t2 < t_hh / 5               # and is far cheaper than HHQR

    benchmark.pedantic(
        _run_variant, args=(_conditioned(rng, 1e4), "CholeskyQR2"),
        rounds=1, iterations=1,
    )


def test_ablation_heuristic_cost_staircase(benchmark):
    """The heuristic's cost grows stepwise with the estimate: 1 pass below
    20, 2 passes to 1e8, 3 passes + shift above."""
    rng = np.random.default_rng(29)
    V = _conditioned(rng, 5.0)
    times = []
    for est in (5.0, 1e5, 1e10):
        grid, C = _fresh(V)
        rep = caqr_1d(grid, C, est_cond=est)
        times.append((rep.variant, rep.chol_iterations, grid.cluster.makespan()))
    assert [t[1] for t in times] == [1, 2, 3]
    assert times[0][2] < times[1][2] < times[2][2]
    emit(
        "ablation_qr_staircase",
        render_table(
            ["est cond", "variant", "Cholesky passes", "model t (ms)"],
            [
                [f"{e:.0e}", v, it, round(t * 1e3, 3)]
                for e, (v, it, t) in zip((5.0, 1e5, 1e10), times)
            ],
            title="Ablation — heuristic pays only for the stability it needs",
        ),
    )
    benchmark.pedantic(
        caqr_1d, args=(*_fresh(V), 5.0), rounds=1, iterations=1
    )
