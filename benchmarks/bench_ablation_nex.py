"""Ablation — sizing the extra search space (nex).

The paper fixes nex per problem (10-40% of nev) without exploring it;
this ablation sweeps it on a scaled suite problem and quantifies the
trade-off the choice embodies:

* too small: the nev-th eigenvalue sits near the filter edge -> slow
  convergence (more iterations, more MatVecs) and cluster-miss risk;
* too large: each iteration filters and orthogonalizes more columns
  than needed -> wasted flops per iteration.

The sweet spot (minimum total MatVecs) lands in the paper's 10-40%
band, supporting its configuration choices.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, chase_serial
from repro.matrices import build_problem
from repro.reporting import render_table


def _run(nex_frac: float):
    H, prob = build_problem("TiO2-29k", N_target=300)
    nev = prob.nev
    nex = max(1, int(round(nev * nex_frac)))
    res = chase_serial(
        H, ChaseConfig(nev=nev, nex=nex), rng=np.random.default_rng(21)
    )
    return nev, nex, res


def test_ablation_nex_sweep(benchmark):
    rows = []
    results = {}
    nev = None
    for frac in (0.05, 0.1, 0.2, 0.4, 0.8, 1.5):
        nev, nex, res = _run(frac)
        rows.append(
            [f"{frac:.2f}", nex, res.iterations, res.matvecs,
             "yes" if res.converged else "NO"]
        )
        results[frac] = res
    emit(
        "ablation_nex",
        render_table(
            ["nex/nev", "nex", "Iters", "MatVecs", "Converged"],
            rows,
            title=f"Ablation — search-space margin (TiO2-29k scaled, nev={nev})",
        ),
    )
    # everything in the paper's band must converge
    for frac in (0.1, 0.2, 0.4):
        assert results[frac].converged, frac
    # a mid-band choice beats a huge margin on MatVecs
    mid = min(results[f].matvecs for f in (0.1, 0.2, 0.4) if results[f].converged)
    assert mid < results[1.5].matvecs
    # and beats (or at worst matches) the starved configuration when that
    # one converges at all
    if results[0.05].converged:
        assert mid <= results[0.05].matvecs * 1.5

    benchmark.pedantic(_run, args=(0.2,), rounds=1, iterations=1)
