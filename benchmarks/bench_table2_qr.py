"""Table 2 — ChASE(NCCL) with HHQR vs CholeskyQR.

For every Table 1 problem:

1. a *numeric* solve of the scaled instance runs twice — once forcing
   ScaLAPACK-HHQR, once with the Algorithm 4 CholeskyQR selection —
   verifying the paper's observation that both give the **same MatVecs
   and iteration counts** (the QR variant changes performance, not
   convergence);
2. the recorded convergence trace, rescaled to the full subspace width,
   is replayed in phantom mode at the paper's full problem size on
   4 JUWELS-Booster nodes, regenerating the Table 2 columns
   ``All (s)`` and ``QR (s)``.

Shape targets (paper Table 2): identical MatVecs/Iters columns; QR time
smaller by 1-3 orders of magnitude with CholeskyQR; the largest gap for
TiO2 29k (>1000 eigenpairs sought).
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit, make_phantom_solver
from repro import ChaseConfig, ChaseSolver
from repro.core.lanczos import SpectralBounds
from repro.distributed import DistributedHermitian
from repro.matrices import TABLE1, build_problem, get_problem
from repro.reporting import render_table
from repro.runtime import CommBackend, Grid2D, VirtualCluster

SCALE_N = 260
NODES = 4  # the paper's Table 2 runs on 4 nodes


def _numeric(name: str, qr_mode: str):
    H, prob = build_problem(name, N_target=SCALE_N)
    cluster = VirtualCluster(4, backend=CommBackend.NCCL)
    grid = Grid2D(cluster)
    Hd = DistributedHermitian.from_dense(grid, H)
    solver = ChaseSolver(
        grid, Hd, ChaseConfig(nev=prob.nev, nex=prob.nex), qr_mode=qr_mode
    )
    return solver.solve(rng=np.random.default_rng(17))


def _paper_scale(name: str, trace, force_hhqr: bool):
    full = get_problem(name)
    replay = trace.rescale_columns(full.nev + full.nex)
    if force_hhqr:
        for rec in replay.records:
            rec.qr_variant = "HHQR"
    solver = make_phantom_solver(
        NODES, full.N, full.nev, full.nex, CommBackend.NCCL,
        dtype=np.complex128,
    )
    res = solver.solve_phantom(
        replay, bounds=SpectralBounds(3.0, -1.0, 1.0)
    )
    return res


def test_table2_hhqr_vs_choleskyqr(benchmark):
    rows = []
    for name in sorted(TABLE1):
        res_hh = _numeric(name, "hhqr")
        res_ch = _numeric(name, "auto")
        # the paper's key observation: identical convergence behaviour
        assert res_hh.iterations == res_ch.iterations, name
        assert res_hh.matvecs == res_ch.matvecs, name
        assert res_hh.converged and res_ch.converged, name

        pap_hh = _paper_scale(name, res_hh.trace, force_hhqr=True)
        pap_ch = _paper_scale(name, res_ch.trace, force_hhqr=False)
        for label, pap, res in (
            ("HHQR", pap_hh, res_hh),
            ("CholeskyQR", pap_ch, res_ch),
        ):
            rows.append(
                [
                    name,
                    label,
                    pap.matvecs,
                    res.iterations,
                    round(pap.makespan, 2),
                    round(pap.timings["QR"].total, 2),
                ]
            )
        # Table 2 shape: CholeskyQR's QR time is 1-3 orders faster and the
        # total time strictly better
        assert pap_ch.timings["QR"].total < pap_hh.timings["QR"].total / 5, name
        assert pap_ch.makespan < pap_hh.makespan, name
    emit(
        "table2_qr",
        render_table(
            ["Type", "QR Impl.", "MatVecs", "Iters", "All (s)", "QR (s)"],
            rows,
            title=(
                "Table 2 — ChASE(NCCL) HHQR vs CholeskyQR "
                f"(modeled on {NODES} JUWELS-Booster nodes at full size; "
                "MatVecs/Iters from numeric scaled runs)"
            ),
        ),
    )
    benchmark.pedantic(
        _numeric, args=("NaCl-9k", "auto"), rounds=1, iterations=1
    )


def test_table2_largest_gap_above_1000_eigenpairs(benchmark):
    """'CholeskyQR greatly enhances performance ... when more than 1,000
    eigenpairs are sought after' — TiO2 29k shows the largest QR gap."""
    gaps = {}
    for name in ("NaCl-9k", "TiO2-29k"):
        res = _numeric(name, "auto")
        hh = _paper_scale(name, res.trace, True)
        ch = _paper_scale(name, res.trace, False)
        gaps[name] = hh.timings["QR"].total / ch.timings["QR"].total
    assert gaps["TiO2-29k"] > gaps["NaCl-9k"]
    emit(
        "table2_gap",
        render_table(
            ["Problem", "QR(HHQR)/QR(CholeskyQR)"],
            [[k, round(v, 1)] for k, v in gaps.items()],
            title="Table 2 — QR speedup grows with the eigenpair count",
        ),
    )
    benchmark.pedantic(
        _numeric, args=("TiO2-29k", "auto"), rounds=1, iterations=1
    )
