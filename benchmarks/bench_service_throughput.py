"""Eigensolver-as-a-service throughput benchmark (DESIGN.md §5i).

Two experiments through :class:`repro.service.EigenService`:

* **sequence point** — a 4-step correlated SCF-like sequence on the
  ISSUE's 2x4 NCCL grid (one 8-rank shard), solved cold (warm-start
  cache off) and warm (subspace + spectral bounds + degree-plan reuse).
  The acceptance metric is the total Chebyshev-filter MatVec count:
  warm must use >= 1.3x fewer filter MatVecs than cold across the
  sequence.  Modeled time-to-solution and Lanczos savings ride along.
* **throughput point** — a mixed multi-tenant workload (two sequences
  interleaved with one-shot jobs, priorities and quotas active) packed
  onto two 4-rank shards, cold vs warm: modeled jobs/hour, per-job
  queue waits and warm-hit counts.

Results append a ``service`` section to ``BENCH_wallclock.json`` with
honest ``target_met_*`` flags.

Run:  ``PYTHONPATH=src python benchmarks/bench_service_throughput.py [--smoke]``

``--smoke`` (CI) shrinks problem sizes and **gates**: nonzero exit when
the filter-MatVec target is missed or any job fails to converge.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import RESULTS_DIR, emit
from repro.service import EigenService, SolveJob, scf_sequence

JSON_PATH = ROOT / "BENCH_wallclock.json"
RESULT_PATH = RESULTS_DIR / "BENCH_service_throughput.json"

#: ISSUE acceptance target: a 4-step warm-started sequence uses >= 1.3x
#: fewer total filter MatVecs than the same sequence solved cold
TARGET_SEQUENCE_MATVEC_RATIO = 1.3


def _run_sequence(hams, nev, nex, *, warm: bool):
    """The sequence on one 8-rank shard (the 2x4 NCCL grid)."""
    svc = EigenService(total_ranks=8, n_shards=1, tune="off", warmstart=warm)
    for k, H in enumerate(hams):
        svc.submit(SolveJob(H=H, nev=nev, nex=nex, sequence_id="scf",
                            step=k, seed=50 + k))
    t0 = time.perf_counter()
    results = svc.run()
    wall = time.perf_counter() - t0
    assert all(r.converged for r in results), \
        [f"{r.job_id}: {r.error}" for r in results if not r.converged]
    return results, wall


def sequence_point(N, nev, nex, steps, drift):
    hams = scf_sequence(N, steps, seed=13, drift=drift)
    warm_res, warm_wall = _run_sequence(hams, nev, nex, warm=True)
    cold_res, cold_wall = _run_sequence(hams, nev, nex, warm=False)

    warm_fmv = sum(r.filter_matvecs for r in warm_res)
    cold_fmv = sum(r.filter_matvecs for r in cold_res)
    warm_span = max(r.finish_time for r in warm_res)
    cold_span = max(r.finish_time for r in cold_res)
    ratio = cold_fmv / warm_fmv

    point = {
        "kind": "sequence",
        "N": N,
        "nev": nev,
        "nex": nex,
        "steps": steps,
        "drift": drift,
        "grid": "2x4",
        "backend": "nccl",
        "filter_matvecs_cold": int(cold_fmv),
        "filter_matvecs_warm": int(warm_fmv),
        "filter_matvec_ratio": round(ratio, 3),
        "iterations_cold": int(sum(r.iterations for r in cold_res)),
        "iterations_warm": int(sum(r.iterations for r in warm_res)),
        "iterations_saved": int(sum(r.iterations_saved for r in warm_res)),
        "warm_hits": sum(1 for r in warm_res if r.warm_hit),
        "modeled_sequence_s_cold": round(cold_span, 6),
        "modeled_sequence_s_warm": round(warm_span, 6),
        "modeled_speedup": round(cold_span / warm_span, 3),
        "wall_s_cold": round(cold_wall, 3),
        "wall_s_warm": round(warm_wall, 3),
        "per_step_warm": [
            {"step": r.step, "warmstart": r.warmstart,
             "iterations": r.iterations, "filter_matvecs": r.filter_matvecs}
            for r in warm_res
        ],
        "target_sequence_matvec_ratio": TARGET_SEQUENCE_MATVEC_RATIO,
        "target_met_sequence_matvecs": bool(
            ratio >= TARGET_SEQUENCE_MATVEC_RATIO
        ),
    }
    return point


def _mixed_workload(N, nev, nex, seq_steps, drift):
    """Two tenant sequences interleaved with one-shot jobs."""
    jobs = []
    for t, tenant in enumerate(("alice", "bob")):
        for k, H in enumerate(scf_sequence(N, seq_steps, seed=20 + t,
                                           drift=drift)):
            jobs.append(SolveJob(H=H, nev=nev, nex=nex,
                                 sequence_id=f"scf-{tenant}", step=k,
                                 seed=60 + 10 * t + k, tenant=tenant))
    for j in range(2):
        H = scf_sequence(N, 1, seed=40 + j)[0]
        jobs.append(SolveJob(H=H, nev=max(4, nev // 2),
                             nex=max(2, nex // 2), tenant="carol",
                             priority=1, seed=80 + j))
    return jobs


def throughput_point(N, nev, nex, seq_steps, drift):
    def run(warm):
        svc = EigenService(total_ranks=8, n_shards=2, tune="fast",
                           warmstart=warm, quota=8)
        for job in _mixed_workload(N, nev, nex, seq_steps, drift):
            svc.submit(job)
        t0 = time.perf_counter()
        results = svc.run()
        wall = time.perf_counter() - t0
        return results, wall

    warm_res, warm_wall = run(True)
    cold_res, cold_wall = run(False)
    assert all(r.converged for r in warm_res + cold_res), \
        [f"{r.job_id}: {r.error}"
         for r in warm_res + cold_res if not r.converged]

    def jobs_per_hour(results):
        horizon = max(r.finish_time for r in results)
        return len(results) / horizon * 3600.0

    warm_jph = jobs_per_hour(warm_res)
    cold_jph = jobs_per_hour(cold_res)
    waits = [r.queue_wait for r in warm_res if r.queue_wait is not None]
    point = {
        "kind": "throughput",
        "N": N,
        "nev": nev,
        "nex": nex,
        "jobs": len(warm_res),
        "shards": 2,
        "ranks_per_shard": 4,
        "backend": "nccl",
        "tune": "fast",
        "tuned_label": warm_res[0].tuned_label,
        "modeled_jobs_per_hour_cold": round(cold_jph, 1),
        "modeled_jobs_per_hour_warm": round(warm_jph, 1),
        "throughput_gain": round(warm_jph / cold_jph, 3),
        "warm_hits": sum(1 for r in warm_res if r.warm_hit),
        "mean_queue_wait_s": round(float(np.mean(waits)), 6),
        "max_queue_wait_s": round(float(np.max(waits)), 6),
        "wall_s_cold": round(cold_wall, 3),
        "wall_s_warm": round(warm_wall, 3),
        "target_met_all_jobs_done": True,  # asserted above
    }
    return point


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small problem sizes (CI); enforces the acceptance gates",
    )
    args = ap.parse_args(argv)

    if args.smoke:
        seq = (280, 36, 18, 4, 1e-3)
        thr = (160, 20, 10, 2, 1e-3)
    else:
        seq = (400, 48, 24, 4, 1e-3)
        thr = (240, 28, 14, 3, 1e-3)

    pt_seq = sequence_point(*seq)
    print(
        f"sequence   N={pt_seq['N']} {pt_seq['steps']} steps grid=2x4 nccl  "
        f"filter MatVecs cold={pt_seq['filter_matvecs_cold']} "
        f"warm={pt_seq['filter_matvecs_warm']} "
        f"(x{pt_seq['filter_matvec_ratio']:.2f} fewer, "
        f"target >= x{TARGET_SEQUENCE_MATVEC_RATIO}); "
        f"modeled speedup x{pt_seq['modeled_speedup']:.2f}"
    )
    pt_thr = throughput_point(*thr)
    print(
        f"throughput N={pt_thr['N']} {pt_thr['jobs']} jobs on 2 shards  "
        f"cold {pt_thr['modeled_jobs_per_hour_cold']:.0f} jobs/h, "
        f"warm {pt_thr['modeled_jobs_per_hour_warm']:.0f} jobs/h "
        f"(x{pt_thr['throughput_gain']:.2f}); "
        f"{pt_thr['warm_hits']} warm hits, tuned: {pt_thr['tuned_label']}"
    )

    section = {
        "benchmark": "service",
        "smoke": bool(args.smoke),
        "description": (
            "Eigensolver-as-a-service (DESIGN.md §5i): a 4-step "
            "warm-started SCF sequence on the 2x4 NCCL grid vs the same "
            "sequence cold (total Chebyshev-filter MatVecs is the "
            "acceptance metric), plus a mixed multi-tenant workload on "
            "two shards reporting modeled jobs/hour cold vs warm."
        ),
        "target_sequence_matvec_ratio": TARGET_SEQUENCE_MATVEC_RATIO,
        "sequence": pt_seq,
        "throughput": pt_thr,
        "target_met_sequence_matvecs": bool(
            pt_seq["target_met_sequence_matvecs"]
        ),
        "target_met_all_jobs_done": bool(pt_thr["target_met_all_jobs_done"]),
    }

    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text())
    report["service"] = section
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(section, indent=2) + "\n")
    emit(
        "bench_service_throughput",
        f"service benchmark -> {JSON_PATH} (section 'service') and "
        f"{RESULT_PATH}\n"
        f"4-step sequence filter MatVecs: "
        f"x{pt_seq['filter_matvec_ratio']:.2f} fewer warm "
        f"(target >= x{TARGET_SEQUENCE_MATVEC_RATIO})\n"
        f"mixed workload: {pt_thr['modeled_jobs_per_hour_cold']:.0f} -> "
        f"{pt_thr['modeled_jobs_per_hour_warm']:.0f} modeled jobs/hour "
        f"(x{pt_thr['throughput_gain']:.2f})",
    )

    if args.smoke and not section["target_met_sequence_matvecs"]:
        print(
            f"SMOKE GATE FAILED: sequence filter-MatVec ratio "
            f"x{pt_seq['filter_matvec_ratio']:.3f} < "
            f"x{TARGET_SEQUENCE_MATVEC_RATIO}",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
