"""Figure 1 — estimated vs computed condition number of the filtered block.

For each (scaled) Table 1 problem, ChASE runs once with degree
optimization on and once off; at every iteration the Algorithm 5
estimate ``kappa_est`` is compared against the SVD-computed
``kappa_com`` of the filtered block.  The paper's claims, checked here:

* the estimate upper-bounds the computed value at every iteration
  (modulo the documented first-iteration last-digit exception);
* without optimization the largest condition number appears at the
  first iteration; with optimization it can grow in early iterations
  (maximal degree 36) while converging in fewer iterations overall.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, ChaseSolver
from repro.distributed import DistributedHermitian
from repro.matrices import TABLE1, build_problem
from repro.runtime import CommBackend, Grid2D, VirtualCluster
from repro.reporting import render_table

SCALE_N = 220


def _run(name: str, opt: bool):
    H, prob = build_problem(name, N_target=SCALE_N)
    seen = []
    cfg = ChaseConfig(
        nev=prob.nev, nex=prob.nex, opt=opt,
        on_iteration=seen.append, compute_true_cond=True,
    )
    cluster = VirtualCluster(4, backend=CommBackend.NCCL)
    grid = Grid2D(cluster)
    Hd = DistributedHermitian.from_dense(grid, H)
    solver = ChaseSolver(grid, Hd, cfg)
    res = solver.solve(rng=np.random.default_rng(5))
    return res, seen


def test_fig1_condition_estimate(benchmark):
    rows = []
    for name in sorted(TABLE1):
        for opt in (True, False):
            res, seen = _run(name, opt)
            for s in seen:
                rows.append(
                    [
                        name,
                        "opt" if opt else "no-opt",
                        s["iteration"],
                        s["cond_est"],
                        s["cond_true"],
                        s["cond_est"] / max(s["cond_true"], 1e-300),
                        s["qr"].variant,
                    ]
                )
                # Fig. 1 property: upper bound (first-iteration exception)
                if s["iteration"] > 1:
                    assert s["cond_est"] >= s["cond_true"] * 0.99, (name, opt)
            assert res.converged, (name, opt)
    emit(
        "fig1_condest",
        render_table(
            ["Problem", "Mode", "Iter", "kappa_est", "kappa_com",
             "est/com", "QR picked"],
            rows,
            title="Figure 1 — condition-number estimate vs computed (per iteration)",
        ),
    )
    benchmark.pedantic(_run, args=("NaCl-9k", True), rounds=1, iterations=1)


def test_fig1_no_opt_first_iteration_predicts_worst_case(benchmark):
    """Sec. 4.2's operational claim for no-opt: "if the condition number
    of C at the first iteration is below a certain threshold, the
    s-CholeskyQR2 can be avoided in any of the following iterations" —
    i.e. either the peak is at iteration 1 (the DFT problems), or the
    entire trajectory stays below the s-CholeskyQR2 threshold (the
    well-conditioned BSE problems)."""
    from repro.core.qr import SHIFTED_THRESHOLD

    peaks = []
    for name in ("NaCl-9k", "TiO2-29k", "In2O3-76k", "HfO2-76k"):
        _res, seen = _run(name, opt=False)
        conds = [s["cond_true"] for s in seen]
        peak_it = int(np.argmax(conds)) + 1
        peaks.append([name, peak_it, max(conds), conds[0]])
        assert (
            max(conds) <= conds[0] * 10  # peak effectively at iteration 1
            or max(conds) < SHIFTED_THRESHOLD  # or never needs sCholeskyQR2
        ), name
    emit(
        "fig1_noopt_peak",
        render_table(
            ["Problem", "Peak iteration", "kappa_com peak", "kappa_com it=1"],
            peaks,
            title="Figure 1 (no-opt) — first iteration predicts the worst case",
        ),
    )
    benchmark.pedantic(_run, args=("In2O3-76k", False), rounds=1, iterations=1)
