"""Table 1 — the test-matrix suite.

Regenerates the paper's Table 1 (problem registry) and demonstrates that
every (scaled) instance is solvable by ChASE to the paper's tolerance,
reporting size, nev/nex, convergence iterations and MatVecs.

The ``pytest-benchmark`` timing covers generating and solving one
representative DFT instance end to end.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, chase_serial
from repro.matrices import TABLE1, build_problem
from repro.reporting import render_table

SCALE_N = 260  # numeric instances are scaled to this size


def _solve(name: str):
    H, prob = build_problem(name, N_target=SCALE_N)
    res = chase_serial(
        H,
        ChaseConfig(nev=prob.nev, nex=prob.nex),
        rng=np.random.default_rng(11),
    )
    return H, prob, res


def test_table1_suite(benchmark):
    rows = []
    for name, full in sorted(TABLE1.items()):
        H, prob, res = _solve(name)
        w_true = np.linalg.eigvalsh(H)[: prob.nev]
        err = float(np.abs(res.eigenvalues - w_true).max())
        rows.append(
            [
                name,
                full.N,
                full.nev,
                full.nex,
                full.source,
                prob.N,
                res.iterations,
                res.matvecs,
                "yes" if res.converged else "NO",
                err,
            ]
        )
        assert res.converged, name
        assert err < 1e-6
    emit(
        "table1_suite",
        render_table(
            ["Name", "N(paper)", "nev", "nex", "Source",
             "N(scaled)", "Iters", "MatVecs", "Conv", "max |dlambda|"],
            rows,
            title="Table 1 — DFT/BSE test suite (scaled numeric instances)",
        ),
    )
    # benchmark one representative end-to-end solve
    benchmark.pedantic(_solve, args=("NaCl-9k",), rounds=1, iterations=1)
