"""Real multi-core solve scaling across execution backends (DESIGN.md §5h).

The orchestrated runtime and the ``threads`` backend share one Python
process — one GIL, one BLAS pool — so their host wall-clock cannot beat
single-core.  The ``mp`` backend runs every rank as a spawned OS process
with an independent BLAS pool: on a multi-core host the rank-local GEMM
work of a solve genuinely overlaps, and the measured speedup should
approach the Amdahl bound
:func:`repro.perfmodel.calibrate.predicted_backend_speedup`.

Each point solves the *same* problem on ``orchestrated``, ``threads``
and ``mp`` (the mp run with ``REPRO_KERNEL_WORKERS = n_ranks`` so the
kernel plane fans the HEMM/axpby batches across the worker pool) and
re-verifies the §5h contract on every backend:

* eigenpairs and residual norms bit-identical to orchestrated;
* modeled CommStats (legacy triple and per-level split) identical, with
  the transport's independently measured wire account matching exactly
  (``assert_transport_parity`` runs inside every solve).

Honesty: the ``target_met_*`` gates in ``BENCH_wallclock.json`` record
whether the mp backend reached the **1.5x at 4 ranks** real-speedup
target.  That target needs >= 4 physical cores; the measured core count
is recorded next to the verdict, and on a single-core container the
Amdahl prediction itself degenerates to 1.0x — the process fan-out then
only buys IPC overhead, which the numbers will show.  Conformance
(bit-identity + oracle parity) is gated unconditionally.

Run:  ``PYTHONPATH=src python benchmarks/bench_backend_scaling.py [--smoke]``

``--smoke`` (CI) shrinks the problem, runs the 2x2 point only, and
exits nonzero if any backend breaks bit-identity or wire parity.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import emit
from repro import ChaseConfig, ChaseSolver
from repro.distributed import DistributedHermitian
from repro.matrices import uniform_matrix
from repro.perfmodel.calibrate import predicted_backend_speedup
from repro.runtime import Grid2D, VirtualCluster, kernel_worker_scope

JSON_PATH = ROOT / "BENCH_wallclock.json"

BACKENDS = ("orchestrated", "threads", "mp")

#: real-speedup target for the mp backend at 4 ranks (needs >= 4 cores)
TARGET_MP_SPEEDUP_4RANKS = 1.5


def solve_point(backend: str, p: int, q: int, H, nev: int, nex: int,
                workers: int = 1):
    """One timed solve; returns (wall_s, result, stats, levels)."""
    with VirtualCluster(p * q, backend=backend) as cluster:
        grid = Grid2D(cluster, p, q)
        Hd = DistributedHermitian.from_dense(grid, H)
        solver = ChaseSolver(grid, Hd, ChaseConfig(nev=nev, nex=nex))
        with kernel_worker_scope(workers):
            t0 = time.perf_counter()
            res = solver.solve(rng=np.random.default_rng(7),
                               return_vectors=True)
            wall = time.perf_counter() - t0
        final = solver.grid
        return wall, res, final.comm_stats(), final.comm_stats_levels()


def bench_grid(p: int, q: int, N: int, nev: int, nex: int) -> dict:
    """All three backends on one grid shape, conformance-checked."""
    n_ranks = p * q
    H = uniform_matrix(N, rng=np.random.default_rng(12345))
    walls, conform = {}, {}
    base = None
    for backend in BACKENDS:
        workers = n_ranks if backend == "mp" else 1
        wall, res, stats, levels = solve_point(
            backend, p, q, H, nev, nex, workers=workers)
        walls[backend] = wall
        if backend == "orchestrated":
            base = (res, stats, levels)
            conform[backend] = True
        else:
            conform[backend] = bool(
                np.array_equal(res.eigenvalues, base[0].eigenvalues)
                and np.array_equal(res.eigenvectors, base[0].eigenvectors)
                and np.array_equal(res.residual_norms,
                                   base[0].residual_norms)
                and stats == base[1]
                and levels == base[2]
            )
    cores = os.cpu_count() or 1
    speedup_mp = walls["orchestrated"] / walls["mp"]
    return {
        "grid": f"{p}x{q}",
        "n_ranks": n_ranks,
        "N": N,
        "nev": nev,
        "nex": nex,
        "wall_s_orchestrated": round(walls["orchestrated"], 4),
        "wall_s_threads": round(walls["threads"], 4),
        "wall_s_mp": round(walls["mp"], 4),
        "speedup_threads": round(walls["orchestrated"] / walls["threads"], 3),
        "speedup_mp": round(speedup_mp, 3),
        "predicted_speedup_mp": round(
            predicted_backend_speedup(n_ranks, cores=cores), 3),
        "conformance_threads": conform["threads"],
        "conformance_mp": conform["mp"],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="small problem, 2x2 only; gate on conformance")
    args = ap.parse_args(argv)

    cores = os.cpu_count() or 1
    if args.smoke:
        shapes, N, nev, nex = [(2, 2)], 240, 16, 8
    else:
        shapes, N, nev, nex = [(2, 2), (2, 4)], 900, 72, 24

    points = [bench_grid(p, q, N, nev, nex) for p, q in shapes]
    conformance_ok = all(
        pt["conformance_threads"] and pt["conformance_mp"] for pt in points
    )
    at4 = next((pt for pt in points if pt["n_ranks"] == 4), points[0])
    mp_target_met = at4["speedup_mp"] >= TARGET_MP_SPEEDUP_4RANKS

    section = {
        "kind": "backend_scaling",
        "smoke": args.smoke,
        "description": (
            "Real host wall-clock of identical solves on the three "
            "execution backends (DESIGN.md §5h); mp runs every rank as "
            "a spawned process with its own BLAS pool and "
            "REPRO_KERNEL_WORKERS=n_ranks.  Bit-identity and modeled/"
            "wire CommStats parity verified on every point."
        ),
        "cores": cores,
        "target_mp_speedup_4ranks": TARGET_MP_SPEEDUP_4RANKS,
        "target_met_mp_speedup": bool(mp_target_met),
        "target_met_conformance": bool(conformance_ok),
        "points": points,
    }
    if not mp_target_met:
        section["note"] = (
            f"measured on {cores} core(s): the Amdahl bound "
            f"predicted_backend_speedup(4, cores={cores}) = "
            f"{predicted_backend_speedup(4, cores=cores):.3f}x caps what "
            "any process fan-out can deliver here; the 1.5x target needs "
            ">= 4 physical cores and the shortfall is reported honestly, "
            "not excused."
        )

    # merge into the shared wallclock report (preserve other sections)
    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text())
    report["backend_scaling"] = section
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"backend scaling ({cores} core(s)); "
        f"target mp >= {TARGET_MP_SPEEDUP_4RANKS}x at 4 ranks: "
        f"{'MET' if mp_target_met else 'NOT MET'}; "
        f"conformance: {'OK' if conformance_ok else 'BROKEN'}"
    ]
    for pt in points:
        lines.append(
            f"  {pt['grid']}: orchestrated {pt['wall_s_orchestrated']}s, "
            f"threads {pt['wall_s_threads']}s "
            f"(x{pt['speedup_threads']}), mp {pt['wall_s_mp']}s "
            f"(x{pt['speedup_mp']}, predicted x"
            f"{pt['predicted_speedup_mp']}), conformance "
            f"{'ok' if pt['conformance_threads'] and pt['conformance_mp'] else 'BROKEN'}"
        )
    emit("bench_backend_scaling", "\n".join(lines))
    print(f"backend scaling -> {JSON_PATH}")

    if not conformance_ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
