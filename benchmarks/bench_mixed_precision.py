"""Mixed-precision cascade + compressed-collective benchmark (§5g/§5j).

Four experiments on the ISSUE's 2x4 NCCL grid:

* **phantom filter phase** — a paper-scale phantom replay (metadata-only
  buffers, cost model only) comparing the modeled Chebyshev filter-phase
  time of the fp64 baseline against the condest-gated narrow filters
  (``ConvergenceTrace.fixed`` records ``cond_est = 1.0``, so every
  tier's gate stays open for the whole replay — this isolates the
  *filter* effect the acceptance targets are stated over).  fp32 halves
  the HEMM word size; the emulated fp16/bf16 tiers charge 2-byte words
  and the calibrated half GEMM rate (4x by default).
* **phantom QR phase** — the same replay shape with the CholeskyQR2
  records routed through the §5j mixed first pass
  (``mCholeskyQR2[tier]``): narrow Gram + Cholesky + TRSM, fp64 second
  pass, modeled QR-phase speedup per tier.
* **compressed-collective bytes** — numeric pipelined HEMM applies
  measuring the exact allreduce byte volume per configuration: fp32
  buffers move exactly 0.5x the fp64 bytes, and a bf16 or fp16 wire
  payload on fp32 buffers moves exactly 0.25x.  Per-communicator
  ``intra + inter == bytes_moved`` is asserted on every run.
* **numeric solve** — full solves where the precision policy actually
  runs: the narrow tiers engage while the condition estimate allows,
  promote (sticky) on the residual floors, and the final eigenpairs are
  checked against a serial ``eigvalsh`` oracle at fp64 tolerance.  The
  half cascade runs at ``deg=2`` (the iteration-1 condition estimate
  grows with the planned degree; small degrees are where the half gates
  are open).  The explicit ``fp64/none`` configuration is asserted
  bit-identical to the ambient default (numerics, CommStats, makespan).

Acceptance gates (recorded as ``target_met_*`` in a ``mixed_precision``
section appended to ``BENCH_wallclock.json``):

* modeled filter-phase speedup of the fp32 filter >= 1.3x;
* modeled filter-phase speedup of the half cascade (bf16+bf16) >= 2.5x;
* modeled QR-phase speedup of mixed CholeskyQR2 (fp16 first pass)
  >= 1.3x;
* filter allreduce bytes of the fp32+compressed configuration <= 0.5x
  the fp64 baseline (exact halving is expected).

Run:  ``PYTHONPATH=src python benchmarks/bench_mixed_precision.py [--smoke]``

``--smoke`` (CI) shrinks the problem sizes and **gates**: it exits
nonzero if any acceptance target is missed, if the fp64 configuration
is not bit-identical to the seed path, or if a mixed-precision solve
misses fp64 accuracy.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for _p in (str(ROOT), str(ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import numpy as np

from benchmarks._common import RESULTS_DIR, emit, make_phantom_solver
from repro import ChaseConfig, ChaseSolver, ConvergenceTrace
from repro.distributed import (
    DistributedHemm,
    DistributedHermitian,
    DistributedMultiVector,
    comm_compress_scope,
    filter_dtype_scope,
    filter_pipeline,
)
from repro.runtime import CommBackend, Grid2D, VirtualCluster

JSON_PATH = ROOT / "BENCH_wallclock.json"
RESULT_PATH = RESULTS_DIR / "BENCH_mixed_precision.json"

#: ISSUE acceptance targets (2x4 NCCL grid)
TARGET_FILTER_SPEEDUP = 1.3
TARGET_CASCADE_FILTER_SPEEDUP = 2.5
TARGET_QR_SPEEDUP = 1.3
TARGET_ALLREDUCE_BYTES_RATIO = 0.5

#: (filter_dtype, comm_compress, pipelined) configurations exercised.
#: Compression only rides the pipelined (chunked-iallreduce) path and
#: only while the apply runs in the narrow working dtype, so the
#: compressed configs enable the pipeline.
CONFIGS = (
    ("fp64", "none", False),
    ("fp32", "none", False),
    ("fp32", "fp32", True),
    ("fp32", "bf16", True),
    ("bf16", "bf16", True),
    ("fp16", "fp16", True),
)


@contextlib.contextmanager
def _precision(fdt: str, comp: str, pipelined: bool, chunks: int = 4):
    with contextlib.ExitStack() as stack:
        stack.enter_context(filter_dtype_scope(fdt))
        stack.enter_context(comm_compress_scope(comp))
        if pipelined:
            stack.enter_context(filter_pipeline(True, chunks))
        yield


def _grid(p: int, q: int) -> Grid2D:
    cluster = VirtualCluster(p * q, backend=CommBackend.NCCL)
    return Grid2D(cluster, p, q)


def _label(fdt: str, comp: str) -> str:
    return fdt if comp == "none" else f"{fdt}+{comp}"


# ---------------------------------------------------------------------------
# phantom filter phase — the acceptance target's modeled speedup
# ---------------------------------------------------------------------------


def phantom_filter_point(N, nev, nex, deg, iters):
    """Paper-scale phantom replay on the 2-node (8-rank, 2x4) NCCL grid.

    ``ConvergenceTrace.fixed`` records ``cond_est = 1.0``; the policy
    keeps the fp32 gate open for every iteration, so the fp64/fp32 gap
    is the full filter-phase effect of the narrow working dtype.
    """
    trace = ConvergenceTrace.fixed(iters, nev + nex, deg=deg)

    def run(fdt, comp, pipelined):
        solver = make_phantom_solver(2, N, nev, nex, CommBackend.NCCL)
        with _precision(fdt, comp, pipelined):
            res = solver.solve_phantom(trace)
        bytes_total = sum(s[2] for s in solver.grid.comm_stats())
        return res, bytes_total

    out = {}
    for fdt, comp, pipelined in CONFIGS:
        res, bytes_total = run(fdt, comp, pipelined)
        assert all(tok == fdt for tok in res.precision_log), \
            "phantom replay left the requested filter dtype!"
        out[_label(fdt, comp)] = (res, bytes_total)

    base, base_bytes = out["fp64"]
    point = {
        "kind": "phantom_filter",
        "N": N,
        "nev": nev,
        "nex": nex,
        "deg": deg,
        "iterations": iters,
        "grid": "2x4",
        "backend": "nccl",
        "modeled_filter_fp64_s": round(base.timings["Filter"].total, 6),
        "modeled_makespan_fp64_s": round(base.makespan, 6),
        "comm_bytes_fp64": int(base_bytes),
    }
    for label, (res, bytes_total) in out.items():
        if label == "fp64":
            continue
        ftime = res.timings["Filter"].total
        point.update({
            f"modeled_filter_{label}_s": round(ftime, 6),
            f"modeled_makespan_{label}_s": round(res.makespan, 6),
            f"comm_bytes_{label}": int(bytes_total),
            f"speedup_modeled_filter_{label}": round(
                base.timings["Filter"].total / ftime, 3
            ),
            f"speedup_modeled_makespan_{label}": round(
                base.makespan / res.makespan, 3
            ),
            f"solve_bytes_ratio_{label}": round(bytes_total / base_bytes, 4),
        })
    point["target_filter_speedup"] = TARGET_FILTER_SPEEDUP
    point["target_met_filter_speedup"] = bool(
        point["speedup_modeled_filter_fp32"] >= TARGET_FILTER_SPEEDUP
    )
    point["target_cascade_filter_speedup"] = TARGET_CASCADE_FILTER_SPEEDUP
    point["target_met_cascade_filter_speedup"] = bool(
        point["speedup_modeled_filter_bf16+bf16"]
        >= TARGET_CASCADE_FILTER_SPEEDUP
    )
    return point


# ---------------------------------------------------------------------------
# phantom QR phase — mixed CholeskyQR2 modeled speedup
# ---------------------------------------------------------------------------


def phantom_qr_point(N, nev, nex, deg, iters):
    """Modeled QR-phase time of CholeskyQR2 vs the §5j mixed variants.

    The replay dispatches on the recorded variant string, exactly as a
    tuned-config dry run does: ``mCholeskyQR2[tier]`` charges the
    narrow Gram + Cholesky + TRSM first pass (2-byte words and the half
    GEMM rate for fp16/bf16, plus the compressed Gram allreduce) and
    the fp64 second pass.
    """
    def run(variant):
        trace = ConvergenceTrace.fixed(
            iters, nev + nex, deg=deg, qr_variant=variant)
        solver = make_phantom_solver(2, N, nev, nex, CommBackend.NCCL)
        return solver.solve_phantom(trace)

    base = run("CholeskyQR2")
    point = {
        "kind": "phantom_qr",
        "N": N,
        "nev": nev,
        "nex": nex,
        "iterations": iters,
        "grid": "2x4",
        "backend": "nccl",
        "modeled_qr_fp64_s": round(base.timings["QR"].total, 6),
    }
    for token in ("fp16", "bf16", "fp32"):
        res = run(f"mCholeskyQR2[{token}]")
        qtime = res.timings["QR"].total
        point.update({
            f"modeled_qr_{token}_s": round(qtime, 6),
            f"speedup_modeled_qr_{token}": round(
                base.timings["QR"].total / qtime, 3
            ),
        })
    point["target_qr_speedup"] = TARGET_QR_SPEEDUP
    point["target_met_qr_speedup"] = bool(
        point["speedup_modeled_qr_fp16"] >= TARGET_QR_SPEEDUP
    )
    return point


# ---------------------------------------------------------------------------
# compressed collectives — exact allreduce byte accounting
# ---------------------------------------------------------------------------


def comm_bytes_point(N, ne, p, q, chunks=4):
    """Allreduce bytes of pipelined HEMM applies per wire configuration.

    This is the filter's inner loop in isolation, where the byte target
    is exact: fp32 work buffers halve the reduced payload, and a bf16
    wire payload halves it again.  The full-solve byte ratio (reported
    by the phantom point) sits above 0.5 because QR / Rayleigh-Ritz /
    residual reductions always stay fp64.
    """
    rng = np.random.default_rng(42)
    A = rng.standard_normal((N, N))
    H = (A + A.T) / 2
    V = rng.standard_normal((N, ne))

    def run(x_dtype, payload):
        with comm_compress_scope(payload), filter_pipeline(True, chunks):
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            hemm = DistributedHemm(Hd)
            C = DistributedMultiVector.from_global(
                grid, V.astype(x_dtype), Hd.rowmap, "C"
            )
            hemm.apply(C, pipeline=True)
            comms = [grid.col_comm(j) for j in range(grid.q)] + \
                    [grid.row_comm(i) for i in range(grid.p)]
            for comm in comms:
                s = comm.stats
                assert s.intra_bytes + s.inter_bytes == s.bytes_moved, \
                    "per-level byte split does not conserve total bytes!"
            return sum(s[2] for s in grid.comm_stats())

    b_fp64 = run(np.float64, "none")
    b_fp32 = run(np.float32, "none")
    b_fp32_fp32 = run(np.float32, "fp32")
    b_fp32_bf16 = run(np.float32, "bf16")
    b_fp32_fp16 = run(np.float32, "fp16")
    b_fp64_fp32 = run(np.float64, "fp32")  # gated off outside fp32 regime

    point = {
        "kind": "comm_bytes",
        "N": N,
        "ne": ne,
        "grid": f"{p}x{q}",
        "backend": "nccl",
        "chunks": chunks,
        "allreduce_bytes_fp64": int(b_fp64),
        "allreduce_bytes_fp32": int(b_fp32),
        "allreduce_bytes_fp32+fp32": int(b_fp32_fp32),
        "allreduce_bytes_fp32+bf16": int(b_fp32_bf16),
        "allreduce_bytes_fp32+fp16": int(b_fp32_fp16),
        "ratio_fp32": round(b_fp32 / b_fp64, 6),
        "ratio_fp32+fp32": round(b_fp32_fp32 / b_fp64, 6),
        "ratio_fp32+bf16": round(b_fp32_bf16 / b_fp64, 6),
        "ratio_fp32+fp16": round(b_fp32_fp16 / b_fp64, 6),
        "fp64_payload_gated_off": bool(b_fp64_fp32 == b_fp64),
        "target_allreduce_bytes_ratio": TARGET_ALLREDUCE_BYTES_RATIO,
        "target_met_allreduce_bytes": bool(
            b_fp32_fp32 / b_fp64 <= TARGET_ALLREDUCE_BYTES_RATIO + 1e-12
        ),
    }
    assert point["fp64_payload_gated_off"], \
        "a compressed payload escaped the narrow-dtype gate!"
    assert b_fp32 * 2 == b_fp64, "fp32 buffers did not halve the bytes!"
    assert b_fp32_bf16 * 4 == b_fp64, "bf16 payload did not quarter the bytes!"
    assert b_fp32_fp16 * 4 == b_fp64, "fp16 payload did not quarter the bytes!"
    return point


# ---------------------------------------------------------------------------
# numeric solve — policy in the loop, fp64 accuracy gate
# ---------------------------------------------------------------------------


def solve_point(N, nev, nex, p, q, deg, repeats):
    """Full numeric solves across the precision configurations.

    ``deg`` is chosen so the first-iteration condition estimate sits
    below the fp32 gate (higher degrees polish the filtered block past
    the fp32 residual floor in a single sweep on problems this small, so
    the policy never engages — see ``tests/test_mixed_precision.py``).
    """
    H_rng = np.random.default_rng(1234)
    A = H_rng.standard_normal((N, N))
    H = (A + A.T) / 2
    oracle = np.linalg.eigvalsh(H)[:nev]
    scale = max(1.0, float(np.abs(oracle).max()))

    def run(fdt, comp, pipelined):
        with _precision(fdt, comp, pipelined):
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            solver = ChaseSolver(
                grid, Hd, ChaseConfig(nev=nev, nex=nex, deg=deg)
            )
            res = solver.solve(rng=np.random.default_rng(7))
            return res, grid.comm_stats()

    def timed(fdt, comp, pipelined):
        best = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            got = run(fdt, comp, pipelined)
            wall = time.perf_counter() - t0
            if best is None or wall < best[0]:
                best = (wall, got)
        return best

    # ambient default == explicit fp64/none, bit for bit
    wall_amb, (res_amb, stats_amb) = timed("fp64", "none", False)
    with contextlib.ExitStack():
        grid = _grid(p, q)
        Hd = DistributedHermitian.from_dense(grid, H)
        res_seed = ChaseSolver(
            grid, Hd, ChaseConfig(nev=nev, nex=nex, deg=deg)
        ).solve(rng=np.random.default_rng(7))
        stats_seed = grid.comm_stats()

    point = {
        "kind": "solve",
        "N": N,
        "nev": nev,
        "nex": nex,
        "deg": deg,
        "grid": f"{p}x{q}",
        "backend": "nccl",
        "wall_s_fp64": round(wall_amb, 4),
        "modeled_makespan_fp64_s": round(res_amb.makespan, 6),
        "iterations_fp64": res_amb.iterations,
        "fp64_bit_identical_to_seed": bool(
            np.array_equal(res_amb.eigenvalues, res_seed.eigenvalues)
            and res_amb.makespan == res_seed.makespan
            and stats_amb == stats_seed
        ),
    }
    for fdt, comp, pipelined in CONFIGS[1:4]:
        label = _label(fdt, comp)
        wall, (res, _stats) = timed(fdt, comp, pipelined)
        err = float(np.abs(res.eigenvalues - oracle).max())
        point.update({
            f"wall_s_{label}": round(wall, 4),
            f"modeled_makespan_{label}_s": round(res.makespan, 6),
            f"iterations_{label}": res.iterations,
            f"fp32_filter_iterations_{label}":
                res.precision_log.count("fp32"),
            f"promote_reason_{label}": res.precision_promote_reason,
            f"converged_{label}": bool(res.converged),
            f"max_dlambda_vs_oracle_{label}": err,
            f"accurate_at_fp64_tol_{label}": bool(err <= 1e-8 * scale),
        })
        assert point[f"converged_{label}"], f"{label} solve did not converge!"
        assert point[f"accurate_at_fp64_tol_{label}"], \
            f"{label} solve missed fp64 accuracy!"
        assert point[f"fp32_filter_iterations_{label}"] > 0, \
            f"{label}: the fp32 filter never engaged!"
    assert point["fp64_bit_identical_to_seed"], \
        "explicit fp64/none diverged from the ambient default!"

    # half cascade: deg=2 keeps the iteration-1 condition estimate
    # under the half-tier gates, so the narrow lattice actually filters
    for fdt, comp, pipelined in CONFIGS[4:]:
        label = _label(fdt, comp)
        with _precision(fdt, comp, pipelined):
            grid = _grid(p, q)
            Hd = DistributedHermitian.from_dense(grid, H)
            res = ChaseSolver(
                grid, Hd, ChaseConfig(nev=nev, nex=nex, deg=2)
            ).solve(rng=np.random.default_rng(7))
        err = float(np.abs(res.eigenvalues - oracle).max())
        point.update({
            f"iterations_{label}": res.iterations,
            f"half_filter_iterations_{label}":
                res.precision_log.count(fdt),
            f"converged_{label}": bool(res.converged),
            f"max_dlambda_vs_oracle_{label}": err,
            f"accurate_at_fp64_tol_{label}": bool(err <= 1e-8 * scale),
        })
        assert point[f"converged_{label}"], f"{label} solve did not converge!"
        assert point[f"accurate_at_fp64_tol_{label}"], \
            f"{label} solve missed fp64 accuracy!"
        assert point[f"half_filter_iterations_{label}"] > 0, \
            f"{label}: the half-tier filter never engaged!"
    return point


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="tiny problem sizes, single repeat (CI); enforces the gates",
    )
    ap.add_argument(
        "--campaign-db",
        default=None,
        help="also record every emitted table into this campaign DB "
             "(shared results store, DESIGN.md §5k); the declarative "
             "port of this bench is campaigns/mixed_precision.yml",
    )
    ap.add_argument(
        "--campaign",
        default="mixed_precision",
        help="campaign name the artifacts are recorded under",
    )
    args = ap.parse_args(argv)

    if args.campaign_db:
        from repro.campaign.db import CampaignDB, campaign_db_scope

        with campaign_db_scope(
            CampaignDB(args.campaign_db), args.campaign
        ):
            return _run(args)
    return _run(args)


def _run(args) -> None:
    if args.smoke:
        repeats = 1
        phantom = (12_000, 600, 200, 20, 1)
        comm = (400, 64, 2, 4)
        solve = (300, 32, 16, 2, 4, 10)
    else:
        repeats = 2
        phantom = (45_000, 2250, 750, 20, 3)   # paper weak-scaling shape
        comm = (1200, 160, 2, 4)
        solve = (800, 96, 32, 2, 4, 10)

    pt_phantom = phantom_filter_point(*phantom)
    print(
        f"phantom filter  N={pt_phantom['N']} grid=2x4 nccl  "
        f"fp32 x{pt_phantom['speedup_modeled_filter_fp32']:.2f}  "
        f"fp32+fp32 x{pt_phantom['speedup_modeled_filter_fp32+fp32']:.2f}  "
        f"bf16+bf16 x{pt_phantom['speedup_modeled_filter_bf16+bf16']:.2f}  "
        f"fp16+fp16 x{pt_phantom['speedup_modeled_filter_fp16+fp16']:.2f}"
    )
    pt_qr = phantom_qr_point(*phantom)
    print(
        f"phantom QR      N={pt_qr['N']} grid=2x4 nccl  "
        f"mixed fp16 x{pt_qr['speedup_modeled_qr_fp16']:.2f}  "
        f"bf16 x{pt_qr['speedup_modeled_qr_bf16']:.2f}  "
        f"fp32 x{pt_qr['speedup_modeled_qr_fp32']:.2f}"
    )
    pt_comm = comm_bytes_point(*comm)
    print(
        f"allreduce bytes N={pt_comm['N']} grid=2x4 nccl  "
        f"fp32 x{pt_comm['ratio_fp32']:.3f}  "
        f"fp32+fp32 x{pt_comm['ratio_fp32+fp32']:.3f}  "
        f"fp32+bf16 x{pt_comm['ratio_fp32+bf16']:.3f}  "
        f"fp32+fp16 x{pt_comm['ratio_fp32+fp16']:.3f}"
    )
    pt_solve = solve_point(*solve, repeats)
    print(
        f"numeric solve   N={pt_solve['N']} grid=2x4 nccl  "
        f"fp32 engaged {pt_solve['fp32_filter_iterations_fp32']} iter(s), "
        f"bf16 engaged "
        f"{pt_solve['half_filter_iterations_bf16+bf16']} iter(s), "
        f"err {pt_solve['max_dlambda_vs_oracle_fp32']:.2e}, "
        f"fp64 bit-identical: {pt_solve['fp64_bit_identical_to_seed']}"
    )

    section = {
        "benchmark": "mixed_precision",
        "smoke": bool(args.smoke),
        "description": (
            "Condest-gated three-precision Chebyshev cascade + mixed "
            "CholeskyQR2 + compressed collectives (DESIGN.md §5g/§5j) "
            "on the 2x4 NCCL grid.  The phantom points isolate the "
            "modeled filter- and QR-phase speedups; the comm point "
            "measures exact allreduce byte ratios of the pipelined "
            "filter reductions; the numeric point runs the promotion "
            "policy in the loop and checks eigenpairs against a "
            "serial oracle at fp64 tolerance."
        ),
        "target_filter_speedup": TARGET_FILTER_SPEEDUP,
        "target_cascade_filter_speedup": TARGET_CASCADE_FILTER_SPEEDUP,
        "target_qr_speedup": TARGET_QR_SPEEDUP,
        "target_allreduce_bytes_ratio": TARGET_ALLREDUCE_BYTES_RATIO,
        "phantom_filter": pt_phantom,
        "phantom_qr": pt_qr,
        "comm_bytes": pt_comm,
        "solve": pt_solve,
        "target_met_filter_speedup": bool(
            pt_phantom["target_met_filter_speedup"]
        ),
        "target_met_cascade_filter_speedup": bool(
            pt_phantom["target_met_cascade_filter_speedup"]
        ),
        "target_met_qr_speedup": bool(pt_qr["target_met_qr_speedup"]),
        "target_met_allreduce_bytes": bool(
            pt_comm["target_met_allreduce_bytes"]
        ),
    }

    # append the gates into the wallclock report (created by
    # bench_wallclock.py; tolerate running standalone)
    report = {}
    if JSON_PATH.exists():
        report = json.loads(JSON_PATH.read_text())
    report["mixed_precision"] = section
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    RESULTS_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(json.dumps(section, indent=2) + "\n")
    emit(
        "bench_mixed_precision",
        f"mixed-precision benchmark -> {JSON_PATH} (section "
        f"'mixed_precision') and {RESULT_PATH}\n"
        f"modeled filter speedup (fp32, 2x4 nccl): "
        f"x{pt_phantom['speedup_modeled_filter_fp32']:.2f} "
        f"(target >= x{TARGET_FILTER_SPEEDUP}); half cascade "
        f"x{pt_phantom['speedup_modeled_filter_bf16+bf16']:.2f} "
        f"(target >= x{TARGET_CASCADE_FILTER_SPEEDUP})\n"
        f"modeled QR speedup (mixed fp16 first pass): "
        f"x{pt_qr['speedup_modeled_qr_fp16']:.2f} "
        f"(target >= x{TARGET_QR_SPEEDUP})\n"
        f"allreduce bytes (fp32+compressed): "
        f"x{pt_comm['ratio_fp32+fp32']:.3f} "
        f"(target <= x{TARGET_ALLREDUCE_BYTES_RATIO}); "
        f"bf16 payload x{pt_comm['ratio_fp32+bf16']:.3f}",
    )

    if args.smoke:
        failed = []
        if not section["target_met_filter_speedup"]:
            failed.append(
                f"modeled filter speedup "
                f"x{pt_phantom['speedup_modeled_filter_fp32']:.3f} "
                f"< x{TARGET_FILTER_SPEEDUP}"
            )
        if not section["target_met_cascade_filter_speedup"]:
            failed.append(
                f"modeled cascade filter speedup "
                f"x{pt_phantom['speedup_modeled_filter_bf16+bf16']:.3f} "
                f"< x{TARGET_CASCADE_FILTER_SPEEDUP}"
            )
        if not section["target_met_qr_speedup"]:
            failed.append(
                f"modeled mixed-QR speedup "
                f"x{pt_qr['speedup_modeled_qr_fp16']:.3f} "
                f"< x{TARGET_QR_SPEEDUP}"
            )
        if not section["target_met_allreduce_bytes"]:
            failed.append(
                f"compressed allreduce bytes ratio "
                f"x{pt_comm['ratio_fp32+fp32']:.3f} "
                f"> x{TARGET_ALLREDUCE_BYTES_RATIO}"
            )
        if failed:
            print(
                "SMOKE GATE FAILED: " + "; ".join(failed), file=sys.stderr
            )
            sys.exit(1)


if __name__ == "__main__":
    main()
