"""Figure 3a — weak scaling up to 900 nodes (3600 A100s).

Uniform matrices grow as N = 30k x sqrt(nodes) (30k ... 900k), nev+nex
fixed at 3000, a single ChASE iteration per point (fixed work per rank).

Shape targets (paper Sec. 4.5.1):

* ChASE(NCCL) near-flat: 2.3 s -> 3.9 s (x1.8 over 30x the size);
* ChASE(STD) grows ~3.1x (5.1 s -> 16 s), with dips at the node counts
  whose row/column communicators have power-of-two rank counts
  (4, 16, 64, 256);
* ChASE(LMS) runs out of device memory beyond 144 nodes; at 144 nodes
  ChASE(NCCL)/ChASE(STD) are ~14.1x / ~4.6x faster than it.
"""

from __future__ import annotations

import pytest

from benchmarks._common import emit, weak_scaling_point
from repro.reporting import render_chart, render_series, render_table
from repro.runtime import CommBackend

NODE_COUNTS = (1, 4, 9, 16, 25, 64, 144, 256, 400, 900)
LMS_LIMIT = 144  # the paper's memory boundary


def _series():
    nccl, std, lms = [], [], []
    for nodes in NODE_COUNTS:
        nccl.append(weak_scaling_point(nodes, CommBackend.NCCL).makespan)
        std.append(weak_scaling_point(nodes, CommBackend.MPI_STAGED).makespan)
        if nodes <= LMS_LIMIT:
            try:
                lms.append(
                    weak_scaling_point(
                        nodes, CommBackend.MPI_STAGED, "lms"
                    ).makespan
                )
            except MemoryError:
                lms.append(None)
        else:
            lms.append(None)  # out of device memory (Sec. 2.3)
    return nccl, std, lms


def test_fig3a_weak_scaling(benchmark):
    nccl, std, lms = _series()
    series = {"ChASE(NCCL)": nccl, "ChASE(STD)": std, "ChASE(LMS)": lms}
    emit(
        "fig3a_weak",
        render_series(
            "Figure 3a — weak scaling, time per iteration (s); "
            "N = 30k x sqrt(nodes), ne = 3000; '--' = LMS out of memory",
            "nodes",
            list(NODE_COUNTS),
            series,
        )
        + "\n\n"
        + render_chart(
            "Figure 3a (log-log; seconds vs nodes)",
            list(NODE_COUNTS), series,
        ),
    )
    # near-flat NCCL: x1.8 in the paper; accept < 2.3
    assert nccl[-1] / nccl[0] < 2.3
    assert 1.6 < nccl[0] < 3.0  # the 2.3 s anchor
    # STD grows substantially more than NCCL (paper x3.1)
    assert std[-1] / std[0] > 1.8
    assert std[-1] / std[0] > nccl[-1] / nccl[0]
    # power-of-two dips: 16 nodes cheaper than 25, 64 not worse than 144's trend
    i16, i25 = NODE_COUNTS.index(16), NODE_COUNTS.index(25)
    assert std[i16] < std[i25]
    # LMS exists only up to 144 nodes and is far slower there
    i144 = NODE_COUNTS.index(144)
    assert lms[i144] is not None and all(v is None for v in lms[i144 + 1 :])
    assert lms[i144] / nccl[i144] > 8  # paper: 14.1x
    assert lms[i144] / std[i144] > 3  # paper: 4.6x

    benchmark.pedantic(
        weak_scaling_point, args=(4, CommBackend.NCCL), rounds=1, iterations=1
    )


def test_fig3a_lms_memory_boundary(benchmark):
    """Beyond 144 nodes the v1.2 footprint exceeds the A100's memory."""
    with pytest.raises(MemoryError):
        weak_scaling_point(256, CommBackend.MPI_STAGED, "lms")
    emit(
        "fig3a_oom",
        render_table(
            ["Nodes", "N", "LMS status"],
            [[144, "360k", "runs"], [256, "480k", "MemoryError (paper: OOM)"]],
            title="Figure 3a — LMS memory boundary",
        ),
    )
    benchmark.pedantic(
        weak_scaling_point,
        args=(1, CommBackend.MPI_STAGED, "lms"),
        rounds=1,
        iterations=1,
    )
