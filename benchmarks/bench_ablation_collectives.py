"""Ablation — communication-pattern design choices.

Two studies backing the paper's Sec. 2.3 / 3.1 narrative:

1. **gather-by-broadcasts vs single collective**: v1.2 collects a
   distributed block with one broadcast per rank, so its message count
   grows with the communicator ("when the count of MPI tasks quadruples,
   the number of messages doubles"); the new scheme replaces the gather
   with a single allreduce/broadcast whose cost is nearly flat.
2. **MPI power-of-two allreduce**: the recursive-doubling allreduce pays
   an extra round on non-power-of-two communicators — the dips at 4, 16,
   64, 256 nodes on the ChASE(STD) weak-scaling curve.
"""

from __future__ import annotations

import numpy as np

from benchmarks._common import emit
from repro.perfmodel import MpiModel, NcclModel, juwels_booster
from repro.reporting import render_table
from repro.runtime import CommBackend, Communicator, VirtualCluster


def _gather_cost(p: int, block_bytes: int, by_bcasts: bool) -> float:
    cluster = VirtualCluster(p, backend=CommBackend.MPI_STAGED, ranks_per_node=1)
    comm = Communicator(cluster.ranks)
    bufs = [np.zeros(block_bytes // 8) for _ in range(p)]
    if by_bcasts:
        comm.allgather_by_bcasts(bufs)
    else:
        comm.allgather(bufs)
    return cluster.makespan()


def test_ablation_gather_message_scaling(benchmark):
    """v1.2's per-rank broadcasts scale worse than one collective."""
    total_bytes = 512 * 1024 * 1024  # a fixed N x ne panel, split over p
    rows = []
    prev_ratio = 0.0
    for p in (2, 4, 8, 16, 32):
        block = total_bytes // p
        t_bcasts = _gather_cost(p, block, by_bcasts=True)
        t_coll = _gather_cost(p, block, by_bcasts=False)
        rows.append([p, round(t_bcasts, 4), round(t_coll, 4),
                     round(t_bcasts / t_coll, 2)])
    emit(
        "ablation_gather",
        render_table(
            ["ranks", "v1.2 gather-by-bcasts (s)", "single collective (s)", "ratio"],
            rows,
            title="Ablation — gather pattern (fixed total payload, weak-scaling style)",
        ),
    )
    # by-bcasts must be strictly worse and the gap must widen with p
    ratios = [r[3] for r in rows]
    assert all(r > 1.0 for r in ratios[1:])
    assert ratios[-1] > ratios[1]

    benchmark.pedantic(_gather_cost, args=(8, 64 * 1024 * 1024, True),
                       rounds=1, iterations=1)


def test_ablation_power_of_two_allreduce(benchmark):
    """Non-power-of-two communicators pay an extra allreduce round."""
    mpi = MpiModel(juwels_booster())
    nccl = NcclModel(juwels_booster())
    nbytes = 360e6  # the weak-scaling B-panel payload
    rows = []
    for p in (7, 8, 9, 15, 16, 17, 31, 32, 33):
        t_mpi = mpi.allreduce(nbytes, p, True)
        t_nccl = nccl.allreduce(nbytes, p, True)
        rows.append([p, "yes" if p & (p - 1) == 0 else "no",
                     round(t_mpi, 4), round(t_nccl, 4)])
    emit(
        "ablation_pow2",
        render_table(
            ["ranks", "power of 2", "MPI allreduce (s)", "NCCL allreduce (s)"],
            rows,
            title="Ablation — the power-of-two MPI allreduce advantage "
                  "(360 MB payload)",
        ),
    )
    # p=8/16/32 strictly cheaper than both neighbours for MPI
    by_p = {r[0]: r[2] for r in rows}
    for p in (8, 16, 32):
        assert by_p[p] < by_p[p - 1]
        assert by_p[p] < by_p[p + 1]
    # NCCL has no such structure (monotone in p)
    nccl_ts = [r[3] for r in rows]
    assert nccl_ts == sorted(nccl_ts)

    benchmark.pedantic(mpi.allreduce, args=(nbytes, 9, True),
                       rounds=3, iterations=10)


def test_ablation_redistribution_square_vs_nonsquare(benchmark):
    """Square grids need one broadcast per column communicator for the
    C -> B2 redistribution; non-square grids need more (Sec. 3.1)."""
    from repro.distributed import (
        BlockMap1D,
        DistributedMultiVector,
        redistribute_c_to_b,
    )
    from repro.runtime import Grid2D

    rows = []
    for p, q in ((4, 4), (2, 8), (8, 2)):
        cluster = VirtualCluster(16, backend=CommBackend.NCCL, ranks_per_node=4)
        grid = Grid2D(cluster, p, q)
        C = DistributedMultiVector.zeros(
            grid, BlockMap1D(16000, p), "C", 100, np.float64, True
        )
        B = DistributedMultiVector.zeros(
            grid, BlockMap1D(16000, q), "B", 100, np.float64, True
        )
        n = redistribute_c_to_b(grid, C, B)
        rows.append([f"{p}x{q}", n, round(cluster.makespan() * 1e3, 3)])
    emit(
        "ablation_redistribute",
        render_table(
            ["grid", "broadcasts", "model t (ms)"],
            rows,
            title="Ablation — C->B redistribution cost by grid shape",
        ),
    )
    assert rows[0][1] == 4          # square: q communicators x 1 bcast
    assert rows[1][1] > rows[0][1]  # non-square needs more

    def _one():
        cluster = VirtualCluster(16, backend=CommBackend.NCCL)
        grid = Grid2D(cluster, 4, 4)
        C = DistributedMultiVector.zeros(
            grid, BlockMap1D(16000, 4), "C", 100, np.float64, True
        )
        B = DistributedMultiVector.zeros(
            grid, BlockMap1D(16000, 4), "B", 100, np.float64, True
        )
        redistribute_c_to_b(grid, C, B)

    benchmark.pedantic(_one, rounds=1, iterations=1)
